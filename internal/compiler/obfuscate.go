package compiler

import (
	"math/rand"

	"repro/internal/binimg"
	"repro/internal/isa"
	"repro/internal/minic"
)

// Binary obfuscation, applied after code generation and peephole. The
// related work the paper builds on (Asm2Vec and friends) is motivated by
// exactly this threat: vendors shipping obfuscated builds that degrade
// similarity analysis. The passes here preserve semantics exactly — the
// semantics-preservation property tests run over obfuscated binaries too —
// while distorting the static features similarity models see:
//
//   - dead-code islands: a jump over a run of never-executed junk
//     instructions (inflates instruction counts, splits basic blocks);
//   - live junk: flag-safe save/compute/restore sequences on a scratch
//     register (inflates arithmetic and stack-traffic counts);
//   - stack churn: redundant push/pop pairs.
//
// CompileObfuscated drives the passes; the obfuscation ablation measures
// how much each similarity approach degrades.

// ObfConfig controls obfuscation strength.
type ObfConfig struct {
	Seed int64
	// Density is the per-instruction probability of injecting an
	// obfuscation gadget before it (0.12 is a fairly heavy build).
	Density float64
}

// DefaultObfConfig returns a moderately aggressive configuration.
func DefaultObfConfig(seed int64) ObfConfig {
	return ObfConfig{Seed: seed, Density: 0.12}
}

// CompileObfuscated compiles the module and then obfuscates every function.
func CompileObfuscated(mod *minic.Module, arch *isa.Arch, level Level, cfg ObfConfig) (*binimg.Image, error) {
	obj, err := CompileToObject(mod, arch, level)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range obj.Funcs {
		obj.Funcs[i].Instrs = obfuscate(obj.Funcs[i].Instrs, arch, cfg, rng)
	}
	return Link(obj)
}

// obfuscate rewrites one function's instruction stream, remapping the
// original branch targets (still instruction indexes at this stage) around
// insertions. Gadget-internal jumps already carry final indexes and are
// excluded from the remap.
func obfuscate(instrs []isa.Instr, arch *isa.Arch, cfg ObfConfig, rng *rand.Rand) []isa.Instr {
	if cfg.Density <= 0 {
		return instrs
	}
	scratch := arch.ScratchRegs()
	out := make([]isa.Instr, 0, len(instrs)*2)
	newIndex := make([]int, len(instrs)+1)
	gadgetJumps := make(map[int]bool)
	prevWasCompare := false
	for i, in := range instrs {
		// Never split a flag-setting compare from its consumer, and keep
		// the prologue (the first three instructions) intact so function-
		// boundary recovery still works on stripped obfuscated binaries.
		if i >= 3 && !prevWasCompare && rng.Float64() < cfg.Density {
			out = appendGadget(out, scratch, rng, gadgetJumps)
		}
		newIndex[i] = len(out)
		out = append(out, in)
		prevWasCompare = in.Op == isa.Cmp || in.Op == isa.CmpI
	}
	newIndex[len(instrs)] = len(out)
	for i := range out {
		if out[i].Op.IsBranch() && !gadgetJumps[i] {
			out[i].Imm = int64(newIndex[out[i].Imm])
		}
	}
	return out
}

// appendGadget emits one semantics-preserving obfuscation gadget,
// recording the index of any jump it emits in gadgetJumps.
func appendGadget(out []isa.Instr, scratch []isa.Reg, rng *rand.Rand, gadgetJumps map[int]bool) []isa.Instr {
	r := scratch[rng.Intn(len(scratch))]
	switch rng.Intn(3) {
	case 0:
		// Dead-code island: a jump over never-executed junk. The jump's
		// target is a final-stream index, so it is excluded from the
		// original-index remap via gadgetJumps.
		n := 2 + rng.Intn(4)
		jmpIdx := len(out)
		gadgetJumps[jmpIdx] = true
		out = append(out, isa.Instr{Op: isa.Jmp, Imm: int64(jmpIdx + 1 + n)})
		for k := 0; k < n; k++ {
			out = append(out, junkInstr(scratch, rng))
		}
		return out
	case 1:
		// Live junk: save, compute nonsense, restore.
		out = append(out,
			isa.Instr{Op: isa.Push, Rs1: r},
			isa.Instr{Op: isa.Ldi, Rd: r, Imm: int64(rng.Intn(1 << 16))},
			isa.Instr{Op: isa.XorOp, Rd: r, Rs1: r, Rs2: r},
			isa.Instr{Op: isa.Pop, Rd: r},
		)
		return out
	default:
		// Stack churn.
		out = append(out,
			isa.Instr{Op: isa.Push, Rs1: r},
			isa.Instr{Op: isa.Pop, Rd: r},
		)
		return out
	}
}

// junkInstr returns a random, decodable, never-executed instruction.
func junkInstr(scratch []isa.Reg, rng *rand.Rand) isa.Instr {
	r1 := scratch[rng.Intn(len(scratch))]
	r2 := scratch[rng.Intn(len(scratch))]
	ops := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.XorOp, isa.Mov, isa.Ldi, isa.NegOp, isa.Fadd}
	op := ops[rng.Intn(len(ops))]
	in := isa.Instr{Op: op, Rd: r1, Rs1: r2, Rs2: r1}
	if op == isa.Ldi {
		in.Imm = int64(rng.Intn(1 << 20))
		in.Rs1, in.Rs2 = 0, 0
	}
	return in
}
