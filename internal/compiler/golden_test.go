package compiler

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
)

// The golden-program suite: realistic algorithms written in the source
// language under testdata/, parsed by the textual frontend and executed
// through every (architecture, level) pair. Each program defines
// main(p, n, a, b); the reference interpreter's result is the oracle, and
// a couple of spot values are pinned so the oracle itself cannot silently
// drift.
func TestGoldenPrograms(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("only %d golden programs found", len(paths))
	}

	envs := []*minic.Env{
		{Args: []int64{minic.DataBase, 12, 48, 18}, Data: []byte("hello golden world!!")},
		{Args: []int64{minic.DataBase, 24, 27, 6}, Data: []byte{9, 3, 7, 1, 8, 2, 6, 4, 5, 0, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		{Args: []int64{minic.DataBase, 8, 0, 0}},
	}

	// Pinned oracle spot-checks (program, env index) -> expected value,
	// computed independently of the toolchain.
	pinned := map[string]map[int]int64{
		"gcd.mc": {0: 6, 1: 3}, // gcd(48,18)=6, gcd(27,6)=3
		// steps(48): 48→24→12→6→3→10→5→16→8→4→2→1 = 11; steps(27) = 111.
		"collatz.mc": {0: 11, 1: 111},
	}

	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			name := strings.TrimSuffix(filepath.Base(path), ".mc")
			mod, err := minic.Parse(name, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for ei, env := range envs {
				want, err := minic.Run(mod, "main", env.Clone(), 1<<20)
				if err != nil {
					t.Fatalf("env %d: interpreter: %v", ei, err)
				}
				if exp, ok := pinned[filepath.Base(path)][ei]; ok && want.Ret != exp {
					t.Fatalf("env %d: oracle drift: interpreter says %d, independent value is %d",
						ei, want.Ret, exp)
				}
				for _, arch := range isa.All() {
					for _, lvl := range Levels() {
						im, err := Compile(mod, arch, lvl)
						if err != nil {
							t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
						}
						dis, err := disasm.Disassemble(im)
						if err != nil {
							t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
						}
						got, err := emu.ExecuteByName(dis, "main", env.Clone(), 1<<22)
						if err != nil {
							t.Fatalf("%s/%s env %d: %v", arch.Name, lvl, ei, err)
						}
						if got.Ret != want.Ret {
							t.Errorf("%s/%s env %d: got %d, want %d", arch.Name, lvl, ei, got.Ret, want.Ret)
						}
						if string(got.Mem) != string(want.Mem) {
							t.Errorf("%s/%s env %d: memory diverges", arch.Name, lvl, ei)
						}
					}
				}
			}
		})
	}
}
