package compiler

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/minic"
)

func BenchmarkCompile(b *testing.B) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 12, Name: "libbench", NumFuncs: 25})
	for _, arch := range isa.All() {
		for _, lvl := range []Level{O0, O3} {
			arch, lvl := arch, lvl
			b.Run(arch.Name+"/"+string(lvl), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Compile(mod, arch, lvl); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
