package compiler

import "repro/internal/isa"

// peephole applies always-safe encoding-level rewrites at O2 and above.
// Branch immediates at this stage are instruction indexes (Encode converts
// them to byte offsets later), so deletions remap every branch target.
//
// Patterns:
//   - branches to the immediately-following instruction are deleted;
//   - self-moves (mov r, r) and addsp 0 are deleted;
//   - adjacent push r / pop r pairs are deleted when nothing branches
//     between them;
//   - a load that immediately re-reads a just-stored frame slot is
//     forwarded from the stored register (store-to-load forwarding).
func peephole(instrs []isa.Instr) []isa.Instr {
	for {
		next, changed := peepholeOnce(instrs)
		instrs = next
		if !changed {
			return instrs
		}
	}
}

func peepholeOnce(instrs []isa.Instr) ([]isa.Instr, bool) {
	targets := make(map[int]bool)
	for _, in := range instrs {
		if in.Op.IsBranch() {
			targets[int(in.Imm)] = true
		}
	}

	remove := make([]bool, len(instrs))
	changed := false
	for i := 0; i < len(instrs); i++ {
		in := instrs[i]
		switch {
		case in.Op.IsBranch() && int(in.Imm) == i+1:
			remove[i] = true
			changed = true
		case in.Op == isa.Mov && in.Rd == in.Rs1:
			if !targets[i] {
				remove[i] = true
				changed = true
			}
		case in.Op == isa.AddSp && in.Imm == 0:
			if !targets[i] {
				remove[i] = true
				changed = true
			}
		case in.Op == isa.Push && i+1 < len(instrs) &&
			instrs[i+1].Op == isa.Pop && instrs[i+1].Rd == in.Rs1 &&
			!targets[i] && !targets[i+1] && !remove[i]:
			remove[i] = true
			remove[i+1] = true
			changed = true
		case in.Op == isa.Stw && i+1 < len(instrs) && !targets[i+1]:
			// stw [fp+o], rA ; ldw rB, [fp+o]  =>  stw ; mov rB, rA
			nx := instrs[i+1]
			if nx.Op == isa.Ldw && nx.Rs1 == in.Rs1 && nx.Imm == in.Imm {
				instrs[i+1] = isa.Instr{Op: isa.Mov, Rd: nx.Rd, Rs1: in.Rs2}
				changed = true
			}
		}
	}
	if !changed {
		return instrs, false
	}

	// Rebuild with remapped branch targets. newIndex[i] is the index the
	// i-th old instruction (or, if deleted, the next kept one) lands on.
	newIndex := make([]int, len(instrs)+1)
	kept := 0
	for i := range instrs {
		newIndex[i] = kept
		if !remove[i] {
			kept++
		}
	}
	newIndex[len(instrs)] = kept
	out := make([]isa.Instr, 0, kept)
	for i, in := range instrs {
		if remove[i] {
			continue
		}
		if in.Op.IsBranch() {
			in.Imm = int64(newIndex[in.Imm])
		}
		out = append(out, in)
	}
	return out, true
}
