package compiler

import (
	"math/rand"
	"testing"

	"repro/internal/minic"
)

// evalConst runs a single-expression function through the interpreter.
func evalConst(t *testing.T, e minic.Expr, args []int64, params []string) (int64, error) {
	t.Helper()
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("f", params, minic.Ret(e)),
	}}
	res, err := minic.Run(mod, "f", &minic.Env{Args: args}, 1<<16)
	if err != nil {
		return 0, err
	}
	return res.Ret, nil
}

func TestFoldConstants(t *testing.T) {
	tests := []struct {
		name string
		in   minic.Expr
		want int64
	}{
		{"add", minic.Add(minic.I(2), minic.I(3)), 5},
		{"nested", minic.Mul(minic.Add(minic.I(1), minic.I(2)), minic.I(4)), 12},
		{"identity-add0", minic.Add(minic.V("a"), minic.I(0)), -99},   // folds to V(a)
		{"identity-mul1", minic.Mul(minic.V("a"), minic.I(1)), -99},   // folds to V(a)
		{"identity-0add", minic.Add(minic.I(0), minic.V("a")), -99},   // folds to V(a)
		{"mul-zero-pure", minic.Mul(minic.V("a"), minic.I(0)), -1000}, // folds to 0
		{"unary", minic.Neg(minic.I(7)), -7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			body := mapExprs([]minic.Stmt{minic.Ret(minic.CloneExpr(tt.in))}, fold)
			ret := body[0].(*minic.Return)
			switch tt.want {
			case -99: // expect exactly V("a")
				if v, ok := ret.E.(*minic.VarRef); !ok || v.Name != "a" {
					t.Errorf("folded to %s, want a", ret.E)
				}
			case -1000: // expect constant 0
				if c, ok := ret.E.(*minic.IntLit); !ok || c.V != 0 {
					t.Errorf("folded to %s, want 0", ret.E)
				}
			default:
				c, ok := ret.E.(*minic.IntLit)
				if !ok || c.V != tt.want {
					t.Errorf("folded to %s, want %d", ret.E, tt.want)
				}
			}
		})
	}
}

func TestFoldPreservesTraps(t *testing.T) {
	// 1/0 must NOT fold away — runtime behaviour is a trap.
	body := mapExprs([]minic.Stmt{minic.Ret(minic.Div(minic.I(1), minic.I(0)))}, fold)
	if _, ok := body[0].(*minic.Return).E.(*minic.Bin); !ok {
		t.Error("trapping division was folded away")
	}
	// 0 * call() must not fold: the call has side effects.
	e := minic.Mul(minic.I(0), minic.Call("read_time"))
	body = mapExprs([]minic.Stmt{minic.Ret(e)}, fold)
	if _, ok := body[0].(*minic.Return).E.(*minic.Bin); !ok {
		t.Error("0*call() was folded, dropping a side effect")
	}
}

func TestFoldSemanticsPreservedQuick(t *testing.T) {
	// Random pure expression trees: folding must not change the value.
	rng := rand.New(rand.NewSource(44))
	var gen func(depth int) minic.Expr
	ops := []minic.BinOp{minic.OpAdd, minic.OpSub, minic.OpMul, minic.OpAnd,
		minic.OpOr, minic.OpXor, minic.OpShl, minic.OpShr, minic.OpLt, minic.OpEq}
	gen = func(depth int) minic.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return minic.I(int64(rng.Intn(201) - 100))
			}
			return minic.V("a")
		}
		return minic.B(ops[rng.Intn(len(ops))], gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 300; trial++ {
		e := gen(4)
		arg := int64(rng.Intn(1000) - 500)
		want, werr := evalConst(t, minic.CloneExpr(e), []int64{arg}, []string{"a"})
		folded := mapExprs([]minic.Stmt{minic.Ret(minic.CloneExpr(e))}, fold)
		got, gerr := evalConst(t, folded[0].(*minic.Return).E, []int64{arg}, []string{"a"})
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: trap behaviour changed: %v vs %v (expr %s)", trial, werr, gerr, e)
		}
		if werr == nil && want != got {
			t.Fatalf("trial %d: %s: folded %d, want %d", trial, e, got, want)
		}
	}
}

func TestElideDeadBranches(t *testing.T) {
	body := []minic.Stmt{
		minic.IfElse(minic.I(1),
			[]minic.Stmt{minic.Set("x", minic.I(10))},
			[]minic.Stmt{minic.Set("x", minic.I(20))}),
		minic.IfElse(minic.I(0),
			[]minic.Stmt{minic.Set("y", minic.I(1))},
			[]minic.Stmt{minic.Set("y", minic.I(2))}),
		minic.Loop(minic.I(0), minic.Set("z", minic.I(9))),
		minic.Ret(minic.V("x")),
	}
	out := elideDeadBranches(body)
	if len(out) != 3 { // two Sets + Ret; while(0) dropped
		t.Fatalf("got %d statements, want 3", len(out))
	}
	if s, ok := out[0].(*minic.Assign); !ok || s.Name != "x" {
		t.Errorf("then-branch not inlined: %T", out[0])
	}
	if s, ok := out[1].(*minic.Assign); !ok || s.Name != "y" {
		t.Errorf("else-branch not inlined: %T", out[1])
	}
}

func TestUnroll(t *testing.T) {
	// i = 0; while (i < 3) { s = s + i; i = i + 1 }
	body := append([]minic.Stmt{},
		minic.For("i", minic.I(0), minic.I(3),
			minic.Set("s", minic.Add(minic.V("s"), minic.V("i"))))...)
	out := unrollBody(body)
	// Expect: (Set i; Set s) ×3 + final Set i — no While left.
	for _, s := range out {
		if _, ok := s.(*minic.While); ok {
			t.Fatal("loop was not unrolled")
		}
	}
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		{Name: "f", Body: append(out, minic.Ret(minic.V("s")))},
	}}
	res, err := minic.Run(mod, "f", &minic.Env{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 3 { // 0+1+2
		t.Errorf("unrolled sum = %d, want 3", res.Ret)
	}
}

func TestUnrollRefusals(t *testing.T) {
	mk := func(body ...minic.Stmt) []minic.Stmt { return body }
	tests := []struct {
		name string
		body []minic.Stmt
	}{
		{"trip-count-too-large", minic.For("i", minic.I(0), minic.I(100),
			minic.Set("s", minic.V("i")))},
		{"non-constant-bound", minic.For("i", minic.I(0), minic.V("n"),
			minic.Set("s", minic.V("i")))},
		{"body-writes-induction", minic.For("i", minic.I(0), minic.I(2),
			minic.Set("i", minic.I(0)))},
		{"body-breaks", minic.For("i", minic.I(0), minic.I(2), &minic.Break{})},
		{"body-returns", minic.For("i", minic.I(0), minic.I(2), minic.Ret(minic.I(1)))},
		{"not-canonical", mk(minic.Set("i", minic.I(0)),
			minic.Loop(minic.Gt(minic.V("i"), minic.I(0)), minic.Set("i", minic.I(9))))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := unrollBody(minic.CloneStmts(tt.body))
			hasWhile := false
			for _, s := range out {
				if _, ok := s.(*minic.While); ok {
					hasWhile = true
				}
			}
			if !hasWhile {
				t.Error("loop was unrolled but must not be")
			}
		})
	}
}

func TestInlineLeafFunctions(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("twice", []string{"a"}, minic.Ret(minic.Mul(minic.V("a"), minic.I(2)))),
		minic.NewFunc("f", []string{"x"},
			minic.Ret(minic.Add(minic.Call("twice", minic.V("x")), minic.I(1)))),
	}}
	body := inlineBody(minic.CloneStmts(mod.Funcs[1].Body), mod, 2)
	// The call must be gone.
	if callees := (&minic.Func{Body: body}).Callees(); len(callees) != 0 {
		t.Errorf("call not inlined: callees %v", callees)
	}
	// Semantics preserved.
	inlined := &minic.Module{Name: "t", Funcs: []*minic.Func{
		{Name: "f", Params: []string{"x"}, Body: body},
	}}
	res, err := minic.Run(inlined, "f", &minic.Env{Args: []int64{21}}, 0)
	if err != nil || res.Ret != 43 {
		t.Errorf("inlined f(21) = %d, %v; want 43", res.Ret, err)
	}
}

func TestInlineRefusesComplexArgs(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		// Parameter used twice: inlining a call-argument would duplicate
		// its side effects, so only simple args are allowed.
		minic.NewFunc("sq", []string{"a"}, minic.Ret(minic.Mul(minic.V("a"), minic.V("a")))),
		minic.NewFunc("f", nil, minic.Ret(minic.Call("sq", minic.Call("read_time")))),
	}}
	body := inlineBody(minic.CloneStmts(mod.Funcs[1].Body), mod, 2)
	callees := (&minic.Func{Body: body}).Callees()
	if len(callees) == 0 || callees[0] != "sq" {
		t.Errorf("call with effectful argument must not inline; callees %v", callees)
	}
}

func TestReassociatePreservesValue(t *testing.T) {
	// ((a+3)+5) => a+(3+5); after folding both orders agree.
	e := minic.Add(minic.Add(minic.V("a"), minic.I(3)), minic.I(5))
	r := reassociate(minic.CloneExpr(e))
	want, _ := evalConst(t, minic.CloneExpr(e), []int64{100}, []string{"a"})
	got, _ := evalConst(t, r, []int64{100}, []string{"a"})
	if want != got {
		t.Errorf("reassociation changed value: %d vs %d", got, want)
	}
	// Impure subtrees must not reassociate.
	imp := minic.Add(minic.Add(minic.Call("read_time"), minic.I(1)), minic.I(2))
	if out := reassociate(minic.CloneExpr(imp)); out.String() != imp.String() {
		t.Error("impure expression was reassociated")
	}
}
