package compiler

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/minic"
)

// Code generation. Two instruction-selection paths share one generator:
// the RISC family gets three-address ALU ops, compare-to-register and
// register-conditional branches; the CISC family gets two-address ALU ops,
// immediate forms, flag-setting compares with conditional branches, and
// SETcc materialization. Expression evaluation uses a stack discipline over
// the architecture's scratch registers, spilling to the machine stack when
// the file is exhausted (which the register-starved x86 target exercises
// constantly).
//
// Calling convention: arguments in r0..r3, return value in r0, all
// registers caller-saved. Frames are fp-anchored: every variable owns a
// fp-relative slot; at O1+ the hottest variables are additionally
// register-allocated and spilled around calls.

// maxParams is the corpus-wide parameter convention.
const maxParams = 4

type fixup struct {
	instr int // index into out
	label int
}

type loopCtx struct {
	breakL, contL int
}

type fngen struct {
	arch     *isa.Arch
	cfg      levelCfg
	fn       *minic.Func
	funcIdx  map[string]int
	arity    map[string]int
	strAddrs map[string]int64

	out       []isa.Instr
	fixups    []fixup
	labelPos  map[int]int
	nextLabel int

	slots     map[string]int
	varReg    map[string]isa.Reg
	scratch   []isa.Reg
	sp        int
	frameSize int64
	epilogue  int
	loops     []loopCtx
}

func newFngen(arch *isa.Arch, cfg levelCfg, fn *minic.Func,
	funcIdx map[string]int, arity map[string]int, strAddrs map[string]int64) *fngen {
	return &fngen{
		arch:     arch,
		cfg:      cfg,
		fn:       fn,
		funcIdx:  funcIdx,
		arity:    arity,
		strAddrs: strAddrs,
		labelPos: make(map[int]int),
		slots:    make(map[string]int),
		varReg:   make(map[string]isa.Reg),
		scratch:  arch.ScratchRegs(),
	}
}

func (g *fngen) generate() ([]isa.Instr, error) {
	if len(g.fn.Params) > maxParams {
		return nil, fmt.Errorf("function %s has %d params; the ABI passes at most %d",
			g.fn.Name, len(g.fn.Params), maxParams)
	}
	g.assignHomes()
	g.epilogue = g.newLabel()

	// Prologue.
	for _, in := range g.arch.Prologue() {
		g.emit(in)
	}
	if g.frameSize > 0 {
		g.emit(isa.Instr{Op: isa.AddSp, Imm: -g.frameSize})
	}
	// Home the incoming arguments.
	for i, p := range g.fn.Params {
		argReg := g.arch.ArgRegs()[i]
		if vr, ok := g.varReg[p]; ok {
			g.emit(isa.Instr{Op: isa.Mov, Rd: vr, Rs1: argReg})
		} else {
			g.emit(isa.Instr{Op: isa.Stw, Rs1: g.arch.FP(), Imm: g.slotOff(p), Rs2: argReg})
		}
	}

	if err := g.stmts(g.fn.Body); err != nil {
		return nil, err
	}

	// Falling off the end returns 0.
	g.emit(isa.Instr{Op: isa.Ldi, Rd: 0, Imm: 0})
	g.bind(g.epilogue)
	g.emit(isa.Instr{Op: isa.Mov, Rd: g.arch.SP(), Rs1: g.arch.FP()})
	g.emit(isa.Instr{Op: isa.Pop, Rd: g.arch.FP()})
	g.emit(isa.Instr{Op: isa.Ret})

	// Patch branch fixups with final instruction indexes.
	for _, fx := range g.fixups {
		pos, ok := g.labelPos[fx.label]
		if !ok {
			return nil, fmt.Errorf("unbound label %d", fx.label)
		}
		g.out[fx.instr].Imm = int64(pos)
	}
	if g.sp != 0 {
		return nil, fmt.Errorf("internal: %d scratch registers leaked", g.sp)
	}
	return g.out, nil
}

// assignHomes gives every variable a frame slot and, at O1+, register-
// allocates the most-used variables.
func (g *fngen) assignHomes() {
	vars := append([]string(nil), g.fn.Params...)
	vars = append(vars, g.fn.Locals()...)
	for i, v := range vars {
		g.slots[v] = i
	}
	g.frameSize = int64(len(vars)) * 8
	if g.frameSize%16 != 0 {
		g.frameSize += 16 - g.frameSize%16
	}
	if !g.cfg.regAlloc {
		return
	}
	regs := g.arch.VarRegs()
	if len(regs) == 0 {
		return
	}
	counts := countVarUses(g.fn.Body)
	type vc struct {
		name string
		n    int
	}
	ranked := make([]vc, 0, len(vars))
	for _, v := range vars {
		ranked = append(ranked, vc{v, counts[v]})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
	for i := 0; i < len(regs) && i < len(ranked); i++ {
		if ranked[i].n == 0 {
			break
		}
		g.varReg[ranked[i].name] = regs[i]
	}
}

func countVarUses(ss []minic.Stmt) map[string]int {
	counts := make(map[string]int)
	var walkExpr func(e minic.Expr)
	walkExpr = func(e minic.Expr) {
		switch e := e.(type) {
		case *minic.VarRef:
			counts[e.Name]++
		case *minic.Bin:
			walkExpr(e.L)
			walkExpr(e.R)
		case *minic.Un:
			walkExpr(e.X)
		case *minic.Load:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *minic.LoadW:
			walkExpr(e.Base)
			walkExpr(e.Index)
		case *minic.CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		}
	}
	var walk func(ss []minic.Stmt)
	walk = func(ss []minic.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *minic.Assign:
				counts[s.Name]++
				walkExpr(s.E)
			case *minic.Store:
				walkExpr(s.Base)
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *minic.StoreW:
				walkExpr(s.Base)
				walkExpr(s.Index)
				walkExpr(s.Val)
			case *minic.If:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *minic.While:
				walkExpr(s.Cond)
				walk(s.Body)
			case *minic.Return:
				if s.E != nil {
					walkExpr(s.E)
				}
			case *minic.ExprStmt:
				walkExpr(s.E)
			}
		}
	}
	walk(ss)
	return counts
}

// --- emission helpers ---

func (g *fngen) emit(in isa.Instr) int {
	g.out = append(g.out, in)
	return len(g.out) - 1
}

func (g *fngen) newLabel() int {
	g.nextLabel++
	return g.nextLabel
}

func (g *fngen) bind(label int) {
	g.labelPos[label] = len(g.out)
}

func (g *fngen) emitJump(op isa.Op, rs isa.Reg, label int) {
	idx := g.emit(isa.Instr{Op: op, Rs1: rs})
	g.fixups = append(g.fixups, fixup{instr: idx, label: label})
}

// --- scratch register stack ---

func (g *fngen) alloc() isa.Reg {
	r := g.scratch[g.sp%len(g.scratch)]
	if g.sp >= len(g.scratch) {
		g.emit(isa.Instr{Op: isa.Push, Rs1: r})
	}
	g.sp++
	return r
}

func (g *fngen) free(r isa.Reg) {
	g.sp--
	if g.scratch[g.sp%len(g.scratch)] != r {
		panic("compiler: scratch registers freed out of LIFO order")
	}
	if g.sp >= len(g.scratch) {
		g.emit(isa.Instr{Op: isa.Pop, Rd: r})
	}
}

// liveScratch returns the scratch registers currently holding live values.
func (g *fngen) liveScratch() []isa.Reg {
	n := g.sp
	if n > len(g.scratch) {
		n = len(g.scratch)
	}
	return g.scratch[:n]
}

// --- variable access ---

func (g *fngen) slotOff(name string) int64 {
	return -8 * int64(g.slots[name]+1)
}

func (g *fngen) readVar(name string) isa.Reg {
	r := g.alloc()
	if vr, ok := g.varReg[name]; ok {
		g.emit(isa.Instr{Op: isa.Mov, Rd: r, Rs1: vr})
		return r
	}
	g.emit(isa.Instr{Op: isa.Ldw, Rd: r, Rs1: g.arch.FP(), Imm: g.slotOff(name)})
	return r
}

func (g *fngen) writeVar(name string, r isa.Reg) {
	if vr, ok := g.varReg[name]; ok {
		g.emit(isa.Instr{Op: isa.Mov, Rd: vr, Rs1: r})
		return
	}
	g.emit(isa.Instr{Op: isa.Stw, Rs1: g.arch.FP(), Imm: g.slotOff(name), Rs2: r})
}

// --- statements ---

func (g *fngen) stmts(ss []minic.Stmt) error {
	for _, s := range ss {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *fngen) stmt(s minic.Stmt) error {
	switch s := s.(type) {
	case *minic.Assign:
		r, err := g.expr(s.E)
		if err != nil {
			return err
		}
		g.writeVar(s.Name, r)
		g.free(r)
	case *minic.Store:
		return g.store(s.Base, s.Index, s.Val, isa.Stb, 1)
	case *minic.StoreW:
		return g.store(s.Base, s.Index, s.Val, isa.Stw, 8)
	case *minic.If:
		return g.ifStmt(s)
	case *minic.While:
		return g.whileStmt(s)
	case *minic.Return:
		if s.E == nil {
			g.emit(isa.Instr{Op: isa.Ldi, Rd: 0, Imm: 0})
		} else {
			r, err := g.expr(s.E)
			if err != nil {
				return err
			}
			g.emit(isa.Instr{Op: isa.Mov, Rd: 0, Rs1: r})
			g.free(r)
		}
		g.emitJump(isa.Jmp, 0, g.epilogue)
	case *minic.ExprStmt:
		r, err := g.expr(s.E)
		if err != nil {
			return err
		}
		g.free(r)
	case *minic.Break:
		if len(g.loops) == 0 {
			return fmt.Errorf("break outside loop")
		}
		g.emitJump(isa.Jmp, 0, g.loops[len(g.loops)-1].breakL)
	case *minic.Continue:
		if len(g.loops) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		g.emitJump(isa.Jmp, 0, g.loops[len(g.loops)-1].contL)
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
	return nil
}

func (g *fngen) store(base, index, val minic.Expr, op isa.Op, scale int64) error {
	rb, err := g.addr(base, index, scale)
	if err != nil {
		return err
	}
	rv, err := g.expr(val)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: op, Rs1: rb, Imm: 0, Rs2: rv})
	g.free(rv)
	g.free(rb)
	return nil
}

// addr computes base + index*scale into a scratch register. Constant
// indexes fold into the instruction offset at smart-selection levels, so
// the caller must pass Imm: 0 — addr signals folding by returning the base
// register and emitting the arithmetic.
func (g *fngen) addr(base, index minic.Expr, scale int64) (isa.Reg, error) {
	rb, err := g.expr(base)
	if err != nil {
		return 0, err
	}
	if c, ok := index.(*minic.IntLit); ok && g.cfg.smartSelect {
		// Fold the constant displacement with an immediate add so the
		// final memory operand is [rb+0]; keeping displacement inside the
		// address register keeps Encode's operand forms uniform.
		disp := c.V * scale
		if disp != 0 {
			g.addImm(rb, disp)
		}
		return rb, nil
	}
	ri, err := g.expr(index)
	if err != nil {
		return 0, err
	}
	if scale == 8 {
		if g.arch.Family == isa.CISC {
			g.emit(isa.Instr{Op: isa.ShlI, Rd: ri, Imm: 3})
		} else {
			rs := g.alloc()
			g.emit(isa.Instr{Op: isa.Ldi, Rd: rs, Imm: 3})
			g.emit(isa.Instr{Op: isa.Shl, Rd: ri, Rs1: ri, Rs2: rs})
			g.free(rs)
		}
	}
	if g.arch.Family == isa.CISC {
		g.emit(isa.Instr{Op: isa.Add2, Rd: rb, Rs1: ri})
	} else {
		g.emit(isa.Instr{Op: isa.Add, Rd: rb, Rs1: rb, Rs2: ri})
	}
	g.free(ri)
	return rb, nil
}

// addImm adds a constant to a register using the cheapest form available.
func (g *fngen) addImm(r isa.Reg, v int64) {
	if g.arch.Family == isa.CISC {
		g.emit(isa.Instr{Op: isa.AddI, Rd: r, Imm: v})
		return
	}
	t := g.alloc()
	g.emit(isa.Instr{Op: isa.Ldi, Rd: t, Imm: v})
	g.emit(isa.Instr{Op: isa.Add, Rd: r, Rs1: r, Rs2: t})
	g.free(t)
}

func (g *fngen) ifStmt(s *minic.If) error {
	elseL := g.newLabel()
	endL := elseL
	if len(s.Else) > 0 {
		endL = g.newLabel()
	}
	if err := g.condFalseJump(s.Cond, elseL); err != nil {
		return err
	}
	if err := g.stmts(s.Then); err != nil {
		return err
	}
	if len(s.Else) > 0 {
		g.emitJump(isa.Jmp, 0, endL)
		g.bind(elseL)
		if err := g.stmts(s.Else); err != nil {
			return err
		}
	}
	g.bind(endL)
	return nil
}

func (g *fngen) whileStmt(s *minic.While) error {
	condL := g.newLabel()
	endL := g.newLabel()
	g.bind(condL)
	if err := g.condFalseJump(s.Cond, endL); err != nil {
		return err
	}
	g.loops = append(g.loops, loopCtx{breakL: endL, contL: condL})
	err := g.stmts(s.Body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	g.emitJump(isa.Jmp, 0, condL)
	g.bind(endL)
	return nil
}

// negatedCondJump maps a comparison operator to the CISC conditional branch
// taken when the comparison is FALSE.
var negatedCondJump = map[minic.BinOp]isa.Op{
	minic.OpEq: isa.Jne,
	minic.OpNe: isa.Je,
	minic.OpLt: isa.Jge,
	minic.OpLe: isa.Jg,
	minic.OpGt: isa.Jle,
	minic.OpGe: isa.Jl,
}

// condFalseJump emits a jump to label taken when cond evaluates to zero.
func (g *fngen) condFalseJump(cond minic.Expr, label int) error {
	if b, ok := cond.(*minic.Bin); ok && b.Op.IsCompare() && g.arch.Family == isa.CISC {
		rl, err := g.expr(b.L)
		if err != nil {
			return err
		}
		rr, err := g.expr(b.R)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.Cmp, Rs1: rl, Rs2: rr})
		g.free(rr)
		g.free(rl)
		g.emitJump(negatedCondJump[b.Op], 0, label)
		return nil
	}
	r, err := g.expr(cond)
	if err != nil {
		return err
	}
	if g.arch.Family == isa.CISC {
		g.emit(isa.Instr{Op: isa.CmpI, Rs1: r, Imm: 0})
		g.free(r)
		g.emitJump(isa.Je, 0, label)
		return nil
	}
	g.emitJump(isa.Jz, r, label)
	g.free(r)
	return nil
}

// --- expressions ---

var riscBinOps = map[minic.BinOp]isa.Op{
	minic.OpAdd: isa.Add, minic.OpSub: isa.Sub, minic.OpMul: isa.Mul,
	minic.OpDiv: isa.Div, minic.OpMod: isa.Mod,
	minic.OpAnd: isa.AndOp, minic.OpOr: isa.OrOp, minic.OpXor: isa.XorOp,
	minic.OpShl: isa.Shl, minic.OpShr: isa.Shr,
	minic.OpFAdd: isa.Fadd, minic.OpFSub: isa.Fsub,
	minic.OpFMul: isa.Fmul, minic.OpFDiv: isa.Fdiv,
	minic.OpEq: isa.Seq, minic.OpNe: isa.Sne, minic.OpLt: isa.Slt,
	minic.OpLe: isa.Sle, minic.OpGt: isa.Sgt, minic.OpGe: isa.Sge,
}

var ciscBinOps = map[minic.BinOp]isa.Op{
	minic.OpAdd: isa.Add2, minic.OpSub: isa.Sub2, minic.OpMul: isa.Mul2,
	minic.OpDiv: isa.Div2, minic.OpMod: isa.Mod2,
	minic.OpAnd: isa.And2, minic.OpOr: isa.Or2, minic.OpXor: isa.Xor2,
	minic.OpShl: isa.Shl2, minic.OpShr: isa.Shr2,
	minic.OpFAdd: isa.Fadd2, minic.OpFSub: isa.Fsub2,
	minic.OpFMul: isa.Fmul2, minic.OpFDiv: isa.Fdiv2,
}

var ciscImmOps = map[minic.BinOp]isa.Op{
	minic.OpAdd: isa.AddI, minic.OpSub: isa.SubI, minic.OpMul: isa.MulI,
	minic.OpAnd: isa.AndI, minic.OpOr: isa.OrI, minic.OpXor: isa.XorI,
	minic.OpShl: isa.ShlI, minic.OpShr: isa.ShrI,
}

var ciscSetOps = map[minic.BinOp]isa.Op{
	minic.OpEq: isa.Sete, minic.OpNe: isa.Setne, minic.OpLt: isa.Setl,
	minic.OpLe: isa.Setle, minic.OpGt: isa.Setg, minic.OpGe: isa.Setge,
}

func (g *fngen) expr(e minic.Expr) (isa.Reg, error) {
	switch e := e.(type) {
	case *minic.IntLit:
		r := g.alloc()
		g.emit(isa.Instr{Op: isa.Ldi, Rd: r, Imm: e.V})
		return r, nil
	case *minic.StrLit:
		addr, ok := g.strAddrs[e.S]
		if !ok {
			return 0, fmt.Errorf("string literal %q not interned", e.S)
		}
		r := g.alloc()
		g.emit(isa.Instr{Op: isa.Ldi, Rd: r, Imm: addr})
		return r, nil
	case *minic.VarRef:
		return g.readVar(e.Name), nil
	case *minic.Un:
		return g.unary(e)
	case *minic.Bin:
		return g.binary(e)
	case *minic.Load:
		return g.load(e.Base, e.Index, isa.Ldb, 1)
	case *minic.LoadW:
		return g.load(e.Base, e.Index, isa.Ldw, 8)
	case *minic.CallExpr:
		return g.call(e)
	default:
		return 0, fmt.Errorf("unknown expression %T", e)
	}
}

func (g *fngen) unary(e *minic.Un) (isa.Reg, error) {
	r, err := g.expr(e.X)
	if err != nil {
		return 0, err
	}
	if g.arch.Family == isa.CISC {
		var op isa.Op
		switch e.Op {
		case minic.OpNeg:
			op = isa.Neg2
		case minic.OpNot:
			op = isa.Not2
		default:
			op = isa.Inv2
		}
		g.emit(isa.Instr{Op: op, Rd: r})
		return r, nil
	}
	var op isa.Op
	switch e.Op {
	case minic.OpNeg:
		op = isa.NegOp
	case minic.OpNot:
		op = isa.NotOp
	default:
		op = isa.Inv
	}
	g.emit(isa.Instr{Op: op, Rd: r, Rs1: r})
	return r, nil
}

func (g *fngen) binary(e *minic.Bin) (isa.Reg, error) {
	// Smart selection: immediate right operands.
	if c, ok := e.R.(*minic.IntLit); ok && g.cfg.smartSelect && !e.Op.IsCompare() && !e.Op.IsFloat() {
		// Strength-reduce multiplications by powers of two.
		op := e.Op
		imm := c.V
		if op == minic.OpMul && imm > 0 && imm&(imm-1) == 0 {
			op = minic.OpShl
			imm = log2(imm)
		}
		if g.arch.Family == isa.CISC {
			if iop, ok := ciscImmOps[op]; ok {
				rl, err := g.expr(e.L)
				if err != nil {
					return 0, err
				}
				g.emit(isa.Instr{Op: iop, Rd: rl, Imm: imm})
				return rl, nil
			}
		} else if op == minic.OpShl && e.Op == minic.OpMul {
			// RISC strength reduction still saves a multiply.
			rl, err := g.expr(e.L)
			if err != nil {
				return 0, err
			}
			rr := g.alloc()
			g.emit(isa.Instr{Op: isa.Ldi, Rd: rr, Imm: imm})
			g.emit(isa.Instr{Op: isa.Shl, Rd: rl, Rs1: rl, Rs2: rr})
			g.free(rr)
			return rl, nil
		}
	}
	rl, err := g.expr(e.L)
	if err != nil {
		return 0, err
	}
	rr, err := g.expr(e.R)
	if err != nil {
		return 0, err
	}
	if g.arch.Family == isa.RISC {
		op, ok := riscBinOps[e.Op]
		if !ok {
			return 0, fmt.Errorf("no RISC lowering for %v", e.Op)
		}
		g.emit(isa.Instr{Op: op, Rd: rl, Rs1: rl, Rs2: rr})
		g.free(rr)
		return rl, nil
	}
	if e.Op.IsCompare() {
		g.emit(isa.Instr{Op: isa.Cmp, Rs1: rl, Rs2: rr})
		g.emit(isa.Instr{Op: ciscSetOps[e.Op], Rd: rl})
		g.free(rr)
		return rl, nil
	}
	op, ok := ciscBinOps[e.Op]
	if !ok {
		return 0, fmt.Errorf("no CISC lowering for %v", e.Op)
	}
	g.emit(isa.Instr{Op: op, Rd: rl, Rs1: rr})
	g.free(rr)
	return rl, nil
}

func (g *fngen) load(base, index minic.Expr, op isa.Op, scale int64) (isa.Reg, error) {
	rb, err := g.addr(base, index, scale)
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: op, Rd: rb, Rs1: rb, Imm: 0})
	return rb, nil
}

func (g *fngen) call(e *minic.CallExpr) (isa.Reg, error) {
	if len(e.Args) > maxParams {
		return 0, fmt.Errorf("call to %s with %d args; ABI maximum is %d", e.Name, len(e.Args), maxParams)
	}
	var callInstr isa.Instr
	if b, ok := minic.Builtins[e.Name]; ok {
		if len(e.Args) != b.NArgs {
			return 0, fmt.Errorf("builtin %s expects %d args, got %d", e.Name, b.NArgs, len(e.Args))
		}
		callInstr = isa.Instr{Op: isa.CallI, Imm: int64(b.Index)}
	} else if idx, ok := g.funcIdx[e.Name]; ok {
		if want := g.arity[e.Name]; len(e.Args) != want {
			return 0, fmt.Errorf("%s expects %d args, got %d", e.Name, want, len(e.Args))
		}
		callInstr = isa.Instr{Op: isa.Call, Imm: int64(idx)}
	} else {
		return 0, fmt.Errorf("call to undefined function %s", e.Name)
	}

	// Save scratch registers holding live outer temporaries.
	saved := append([]isa.Reg(nil), g.liveScratch()...)
	for _, r := range saved {
		g.emit(isa.Instr{Op: isa.Push, Rs1: r})
	}
	// Evaluate arguments left to right, parking each on the stack so even
	// register-starved targets can form four arguments.
	for _, a := range e.Args {
		r, err := g.expr(a)
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.Push, Rs1: r})
		g.free(r)
	}
	for i := len(e.Args) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.Pop, Rd: g.arch.ArgRegs()[i]})
	}
	// Spill register-allocated variables (caller-saved ABI).
	spilled := g.sortedVarRegs()
	for _, v := range spilled {
		g.emit(isa.Instr{Op: isa.Stw, Rs1: g.arch.FP(), Imm: g.slotOff(v), Rs2: g.varReg[v]})
	}
	g.emit(callInstr)
	for _, v := range spilled {
		g.emit(isa.Instr{Op: isa.Ldw, Rd: g.varReg[v], Rs1: g.arch.FP(), Imm: g.slotOff(v)})
	}
	for i := len(saved) - 1; i >= 0; i-- {
		g.emit(isa.Instr{Op: isa.Pop, Rd: saved[i]})
	}
	res := g.alloc()
	g.emit(isa.Instr{Op: isa.Mov, Rd: res, Rs1: 0})
	return res, nil
}

// sortedVarRegs returns register-allocated variable names in a stable order.
func (g *fngen) sortedVarRegs() []string {
	names := make([]string, 0, len(g.varReg))
	for v := range g.varReg {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}

func log2(v int64) int64 {
	var n int64
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
