// Package compiler lowers minic source modules to binary images for the
// four target architectures at six optimization levels — the stand-in for
// the paper's "Clang emitting x86, amd64, ARM 32-bit and ARM 64-bit with
// optimization levels O0, O1, O2, O3, Oz, Ofast". The combination of
// AST-level passes (transform.go), per-family instruction selection
// (codegen.go) and encoding-level peepholes (peephole.go) ensures the same
// source function yields materially different binaries per (arch, level)
// pair while remaining semantically identical to the reference interpreter.
package compiler

import (
	"fmt"

	"repro/internal/binimg"
	"repro/internal/isa"
	"repro/internal/minic"
)

// Level names an optimization level.
type Level string

// The six optimization levels.
const (
	O0    Level = "O0"
	O1    Level = "O1"
	O2    Level = "O2"
	O3    Level = "O3"
	Oz    Level = "Oz"
	Ofast Level = "Ofast"
)

// Levels lists all optimization levels in the paper's order.
func Levels() []Level { return []Level{O0, O1, O2, O3, Oz, Ofast} }

// levelCfg is the pass configuration of one level.
type levelCfg struct {
	constFold   bool
	regAlloc    bool
	smartSelect bool // immediate-form / strength-reduction selection
	peephole    bool
	inline      bool
	inlineDepth int
	unroll      bool
	reassoc     bool
	align       int // function alignment in .text
}

var levelCfgs = map[Level]levelCfg{
	O0: {align: 16},
	O1: {constFold: true, regAlloc: true, align: 16},
	O2: {constFold: true, regAlloc: true, smartSelect: true, peephole: true, align: 16},
	O3: {constFold: true, regAlloc: true, smartSelect: true, peephole: true,
		inline: true, inlineDepth: 2, unroll: true, align: 16},
	Oz: {constFold: true, regAlloc: true, smartSelect: true, peephole: true, align: 1},
	Ofast: {constFold: true, regAlloc: true, smartSelect: true, peephole: true,
		inline: true, inlineDepth: 3, unroll: true, reassoc: true, align: 16},
}

// Object is a compiled-but-not-yet-linked module: per-function instruction
// lists with symbolic call targets (function indexes / import slots).
type Object struct {
	Arch   *isa.Arch
	Level  Level
	Module string
	Funcs  []ObjFunc
	Rodata []byte
}

// ObjFunc is one compiled function.
type ObjFunc struct {
	Name   string
	Instrs []isa.Instr
}

// Compile lowers a module for one (arch, level) pair and links it into a
// binary image (with symbols; call Strip for the COTS form).
func Compile(mod *minic.Module, arch *isa.Arch, level Level) (*binimg.Image, error) {
	obj, err := CompileToObject(mod, arch, level)
	if err != nil {
		return nil, err
	}
	return Link(obj)
}

// CompileToObject runs AST transforms and code generation without linking.
func CompileToObject(mod *minic.Module, arch *isa.Arch, level Level) (*Object, error) {
	cfg, ok := levelCfgs[level]
	if !ok {
		return nil, fmt.Errorf("compiler: unknown optimization level %q", level)
	}
	rodata, strAddrs := minic.InternStrings(mod)
	funcIdx := make(map[string]int, len(mod.Funcs))
	arity := make(map[string]int, len(mod.Funcs))
	for i, f := range mod.Funcs {
		if _, dup := funcIdx[f.Name]; dup {
			return nil, fmt.Errorf("compiler: duplicate function %q in %q", f.Name, mod.Name)
		}
		funcIdx[f.Name] = i
		arity[f.Name] = len(f.Params)
	}
	obj := &Object{Arch: arch, Level: level, Module: mod.Name, Rodata: rodata}
	for _, f := range mod.Funcs {
		tf := transform(f, mod, cfg)
		g := newFngen(arch, cfg, tf, funcIdx, arity, strAddrs)
		instrs, err := g.generate()
		if err != nil {
			return nil, fmt.Errorf("compiler: %s/%s %s: %w", arch.Name, level, f.Name, err)
		}
		if cfg.peephole {
			instrs = peephole(instrs)
		}
		obj.Funcs = append(obj.Funcs, ObjFunc{Name: f.Name, Instrs: instrs})
	}
	return obj, nil
}

// Link lays out the object's functions in .text, resolves call targets to
// absolute addresses, encodes every instruction and emits the final image.
func Link(obj *Object) (*binimg.Image, error) {
	arch := obj.Arch
	align := levelCfgs[obj.Level].align
	if align <= 0 {
		align = 1
	}
	// Pass 1: measure.
	addrs := make([]uint64, len(obj.Funcs))
	sizes := make([]int, len(obj.Funcs))
	addr := uint64(binimg.TextBase)
	for i, f := range obj.Funcs {
		for addr%uint64(align) != 0 {
			addr++
		}
		addrs[i] = addr
		size := 0
		for _, in := range f.Instrs {
			size += arch.InstrSize(in)
		}
		sizes[i] = size
		addr += uint64(size)
	}
	// Pass 2: patch call targets and encode.
	text := make([]byte, addr-uint64(binimg.TextBase))
	symbols := make([]binimg.Symbol, 0, len(obj.Funcs))
	for i, f := range obj.Funcs {
		instrs := make([]isa.Instr, len(f.Instrs))
		copy(instrs, f.Instrs)
		for j := range instrs {
			if instrs[j].Op == isa.Call {
				idx := int(instrs[j].Imm)
				if idx < 0 || idx >= len(addrs) {
					return nil, fmt.Errorf("compiler: %s: call to unknown function index %d", f.Name, idx)
				}
				instrs[j].Imm = int64(addrs[idx])
			}
		}
		b, _, err := arch.Encode(instrs)
		if err != nil {
			return nil, fmt.Errorf("compiler: encode %s: %w", f.Name, err)
		}
		if len(b) != sizes[i] {
			return nil, fmt.Errorf("compiler: %s: size drifted between passes (%d vs %d)", f.Name, len(b), sizes[i])
		}
		copy(text[addrs[i]-uint64(binimg.TextBase):], b)
		symbols = append(symbols, binimg.Symbol{Name: f.Name, Addr: addrs[i], Size: uint64(len(b))})
	}
	imports := make([]string, minic.NumBuiltins())
	for i := range imports {
		b, _ := minic.BuiltinByIndex(i)
		imports[i] = b.Name
	}
	return &binimg.Image{
		Arch:     arch.Name,
		LibName:  obj.Module,
		OptLevel: string(obj.Level),
		Text:     text,
		Rodata:   obj.Rodata,
		Imports:  imports,
		Symbols:  symbols,
	}, nil
}
