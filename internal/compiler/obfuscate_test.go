package compiler

import (
	"testing"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
)

func TestObfuscatedSemanticsPreserved(t *testing.T) {
	// Every CVE function, obfuscated, must still agree with the reference
	// interpreter — obfuscation may only change form, never behaviour.
	envs := propEnvs()
	for _, pair := range minic.CVEs()[:8] { // a representative slice keeps runtime sane
		pair := pair
		t.Run(pair.ID, func(t *testing.T) {
			t.Parallel()
			mod := &minic.Module{Name: "m", Funcs: []*minic.Func{pair.Vulnerable}}
			for _, arch := range isa.All() {
				im, err := CompileObfuscated(mod, arch, O2, DefaultObfConfig(99))
				if err != nil {
					t.Fatal(err)
				}
				dis, err := disasm.Disassemble(im)
				if err != nil {
					t.Fatal(err)
				}
				for ei, env := range envs {
					e := env.Clone()
					e.Args = e.Args[:len(pair.Vulnerable.Params)]
					want, werr := minic.Run(mod, pair.FuncName, e.Clone(), 1<<18)
					got, gerr := emu.ExecuteByName(dis, pair.FuncName, e.Clone(), 1<<22)
					if (werr == nil) != (gerr == nil) {
						wt, _ := minic.IsTrap(werr)
						gt, _ := minic.IsTrap(gerr)
						if wt != nil && gt != nil && compatibleTraps(wt.Kind, gt.Kind) {
							continue
						}
						t.Fatalf("%s env %d: interp err=%v emu err=%v", arch.Name, ei, werr, gerr)
					}
					if werr != nil {
						continue
					}
					if got.Ret != want.Ret || string(got.Mem) != string(want.Mem) {
						t.Fatalf("%s env %d: obfuscation changed behaviour", arch.Name, ei)
					}
				}
			}
		})
	}
}

func TestObfuscationDistortsCode(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 81, Name: "libobf", NumFuncs: 6})
	clean, err := Compile(mod, isa.XARM64, O2)
	if err != nil {
		t.Fatal(err)
	}
	obf, err := CompileObfuscated(mod, isa.XARM64, O2, DefaultObfConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(obf.Text) <= len(clean.Text) {
		t.Errorf("obfuscated text (%d bytes) not larger than clean (%d)", len(obf.Text), len(clean.Text))
	}
	cd, err := disasm.Disassemble(clean)
	if err != nil {
		t.Fatal(err)
	}
	od, err := disasm.Disassemble(obf)
	if err != nil {
		t.Fatal(err)
	}
	grew := 0
	for _, cf := range cd.Funcs {
		of, ok := od.Lookup(cf.Name)
		if !ok {
			t.Fatalf("%s lost in obfuscation", cf.Name)
		}
		if len(of.Instrs) > len(cf.Instrs) {
			grew++
		}
		if len(of.Blocks) < len(cf.Blocks) {
			t.Errorf("%s: obfuscation reduced block count", cf.Name)
		}
	}
	if grew < len(cd.Funcs)/2 {
		t.Errorf("only %d/%d functions grew under obfuscation", grew, len(cd.Funcs))
	}
}

func TestObfuscatedBoundaryRecovery(t *testing.T) {
	// Stripped obfuscated images must still disassemble: the prologue is
	// kept intact by construction and all junk is decodable.
	mod := minic.GenLibrary(minic.GenConfig{Seed: 82, Name: "libobfs", NumFuncs: 10})
	for _, arch := range isa.All() {
		im, err := CompileObfuscated(mod, arch, O1, DefaultObfConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		dis, err := disasm.Disassemble(im.Strip())
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		found := make(map[uint64]bool)
		for _, f := range dis.Funcs {
			found[f.Addr] = true
		}
		for _, sym := range im.Symbols {
			if !found[sym.Addr] {
				t.Errorf("%s: boundary recovery lost %s under obfuscation", arch.Name, sym.Name)
			}
		}
	}
}

func TestObfuscationZeroDensityIsIdentity(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 83, Name: "libid", NumFuncs: 4})
	clean, err := Compile(mod, isa.X86, O2)
	if err != nil {
		t.Fatal(err)
	}
	same, err := CompileObfuscated(mod, isa.X86, O2, ObfConfig{Seed: 1, Density: 0})
	if err != nil {
		t.Fatal(err)
	}
	if string(clean.Text) != string(same.Text) {
		t.Error("density 0 should produce the clean binary")
	}
}
