package compiler

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
)

// compileAndRun compiles mod for (arch, level), disassembles (optionally
// after stripping, exercising boundary recovery) and executes fname via the
// emulator.
func compileAndRun(t *testing.T, mod *minic.Module, fname string, arch *isa.Arch,
	level Level, env *minic.Env, strip bool) (*emu.Result, error) {
	t.Helper()
	im, err := Compile(mod, arch, level)
	if err != nil {
		t.Fatalf("compile %s/%s: %v", arch.Name, level, err)
	}
	target := im
	if strip {
		target = im.Strip()
	}
	dis, err := disasm.Disassemble(target)
	if err != nil {
		t.Fatalf("disassemble %s/%s: %v", arch.Name, level, err)
	}
	if strip {
		// Resolve by address via the unstripped symbol table.
		sym, ok := im.Lookup(fname)
		if !ok {
			t.Fatalf("no symbol %s", fname)
		}
		fn, ok := dis.FuncAt(sym.Addr)
		if !ok {
			return nil, fmt.Errorf("boundary recovery missed function at %#x", sym.Addr)
		}
		return emu.Execute(dis, fn, env, 1<<22)
	}
	return emu.ExecuteByName(dis, fname, env, 1<<22)
}

func TestCompileTrivial(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("addmul", []string{"a", "b"},
			minic.Ret(minic.Add(minic.Mul(minic.V("a"), minic.V("b")), minic.I(7)))),
	}}
	for _, arch := range isa.All() {
		for _, lvl := range Levels() {
			res, err := compileAndRun(t, mod, "addmul", arch, lvl,
				&minic.Env{Args: []int64{6, 7}}, false)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
			}
			if res.Ret != 49 {
				t.Errorf("%s/%s: got %d, want 49", arch.Name, lvl, res.Ret)
			}
		}
	}
}

func TestCompileControlFlow(t *testing.T) {
	// Collatz-ish bounded iteration: a mix of loop, branch, div, mod.
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("steps", []string{"a"},
			minic.Set("n", minic.V("a")),
			minic.Set("c", minic.I(0)),
			minic.Loop(minic.Gt(minic.V("n"), minic.I(1)),
				minic.IfElse(minic.Eq(minic.Mod(minic.V("n"), minic.I(2)), minic.I(0)),
					[]minic.Stmt{minic.Set("n", minic.Div(minic.V("n"), minic.I(2)))},
					[]minic.Stmt{minic.Set("n", minic.Add(minic.Mul(minic.V("n"), minic.I(3)), minic.I(1)))}),
				minic.Set("c", minic.Add(minic.V("c"), minic.I(1))),
			),
			minic.Ret(minic.V("c")),
		),
	}}
	want, err := minic.Run(mod, "steps", &minic.Env{Args: []int64{27}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want.Ret != 111 {
		t.Fatalf("interpreter sanity: got %d, want 111", want.Ret)
	}
	for _, arch := range isa.All() {
		for _, lvl := range Levels() {
			res, err := compileAndRun(t, mod, "steps", arch, lvl,
				&minic.Env{Args: []int64{27}}, false)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
			}
			if res.Ret != want.Ret {
				t.Errorf("%s/%s: got %d, want %d", arch.Name, lvl, res.Ret, want.Ret)
			}
		}
	}
}

// propEnvs are the environments used for semantics-preservation checks.
func propEnvs() []*minic.Env {
	mk := func(args []int64, pattern func(i int) byte, n int) *minic.Env {
		data := make([]byte, n)
		for i := range data {
			data[i] = pattern(i)
		}
		return &minic.Env{Args: args, Data: data}
	}
	return []*minic.Env{
		mk([]int64{minic.DataBase, 64, 3, 2}, func(i int) byte {
			if i == 0 {
				return 4
			}
			if i < 4 {
				return 0
			}
			return 1
		}, 64),
		mk([]int64{minic.DataBase, 32, 9, 5}, func(i int) byte { return byte(i * 37) }, 256),
		mk([]int64{minic.DataBase + 16, 13, -4, 100}, func(i int) byte { return byte(255 - i) }, 128),
	}
}

// checkAgainstInterp compares the compiled+emulated behaviour of every
// function in mod against the reference interpreter under several
// environments, across every (arch, level) pair. This is the central
// correctness property of the entire toolchain.
func checkAgainstInterp(t *testing.T, mod *minic.Module, fnames []string, strip bool) {
	t.Helper()
	for _, arch := range isa.All() {
		for _, lvl := range Levels() {
			for _, fname := range fnames {
				fn := mod.Lookup(fname)
				for ei, env := range propEnvs() {
					e := env.Clone()
					e.Args = e.Args[:len(fn.Params)]
					want, werr := minic.Run(mod, fname, e.Clone(), 1<<18)
					got, gerr := compileAndRun(t, mod, fname, arch, lvl, e.Clone(), strip)
					if (werr == nil) != (gerr == nil) {
						t.Errorf("%s/%s %s env%d: interp err=%v, emu err=%v",
							arch.Name, lvl, fname, ei, werr, gerr)
						continue
					}
					if werr != nil {
						wt, _ := minic.IsTrap(werr)
						gt, ok := minic.IsTrap(gerr)
						if !ok {
							t.Errorf("%s/%s %s env%d: emu error not a trap: %v", arch.Name, lvl, fname, ei, gerr)
						} else if wt.Kind != gt.Kind && !compatibleTraps(wt.Kind, gt.Kind) {
							t.Errorf("%s/%s %s env%d: trap kinds differ: interp %v, emu %v",
								arch.Name, lvl, fname, ei, wt.Kind, gt.Kind)
						}
						continue
					}
					if got.Ret != want.Ret {
						t.Errorf("%s/%s %s env%d: ret %d, interp says %d",
							arch.Name, lvl, fname, ei, got.Ret, want.Ret)
					}
					if string(got.Mem) != string(want.Mem) {
						t.Errorf("%s/%s %s env%d: final data region differs from interpreter",
							arch.Name, lvl, fname, ei)
					}
				}
			}
		}
	}
}

// compatibleTraps tolerates the places where the machine-level failure mode
// legitimately differs from the source-level one: source steps and machine
// instructions are different units, so when either side hits a resource
// budget (step limit, frame/stack budget) the other may have raced past it
// into the underlying fault first (e.g. the runaway loop that the
// interpreter cuts off at its step limit walks off the data region in the
// emulator). Genuine faults (OOB vs div-zero) must still match exactly.
func compatibleTraps(a, b minic.TrapKind) bool {
	limitish := func(k minic.TrapKind) bool {
		return k == minic.TrapStack || k == minic.TrapStepLimit
	}
	return limitish(a) || limitish(b)
}

func TestSemanticsPreservationCVEs(t *testing.T) {
	for _, pair := range minic.CVEs() {
		pair := pair
		t.Run(pair.ID, func(t *testing.T) {
			t.Parallel()
			vmod := &minic.Module{Name: "v", Funcs: []*minic.Func{pair.Vulnerable}}
			pmod := &minic.Module{Name: "p", Funcs: []*minic.Func{pair.Patched}}
			checkAgainstInterp(t, vmod, []string{pair.FuncName}, false)
			checkAgainstInterp(t, pmod, []string{pair.FuncName}, false)
		})
	}
}

func TestSemanticsPreservationGenerated(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 1234, Name: "libprop", NumFuncs: 12})
	names := make([]string, 0, len(mod.Funcs))
	for _, f := range mod.Funcs {
		names = append(names, f.Name)
	}
	checkAgainstInterp(t, mod, names, false)
}

func TestSemanticsPreservationStripped(t *testing.T) {
	// Boundary recovery + execution on a stripped image must agree with the
	// interpreter too.
	mod := minic.GenLibrary(minic.GenConfig{Seed: 777, Name: "libstrip", NumFuncs: 8})
	names := make([]string, 0, len(mod.Funcs))
	for _, f := range mod.Funcs {
		names = append(names, f.Name)
	}
	checkAgainstInterp(t, mod, names[:4], true)
}

func TestOptimizationLevelsProduceDifferentCode(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 9, Name: "libdiff", NumFuncs: 6})
	for _, arch := range isa.All() {
		texts := make(map[string][]Level)
		for _, lvl := range Levels() {
			im, err := Compile(mod, arch, lvl)
			if err != nil {
				t.Fatal(err)
			}
			texts[string(im.Text)] = append(texts[string(im.Text)], lvl)
		}
		if len(texts) < 4 {
			t.Errorf("%s: only %d distinct binaries across 6 levels", arch.Name, len(texts))
		}
	}
}

func TestArchsProduceDifferentCode(t *testing.T) {
	mod := minic.GenLibrary(minic.GenConfig{Seed: 10, Name: "libarch", NumFuncs: 4})
	texts := make(map[string]string)
	for _, arch := range isa.All() {
		im, err := Compile(mod, arch, O2)
		if err != nil {
			t.Fatal(err)
		}
		if other, dup := texts[string(im.Text)]; dup {
			t.Errorf("%s and %s produced identical text", arch.Name, other)
		}
		texts[string(im.Text)] = arch.Name
	}
}

func TestCompileRejectsBadPrograms(t *testing.T) {
	tests := []struct {
		name string
		mod  *minic.Module
	}{
		{"too-many-params", &minic.Module{Name: "t", Funcs: []*minic.Func{
			minic.NewFunc("f", []string{"a", "b", "c", "d", "e"}, minic.Ret(minic.I(0))),
		}}},
		{"unknown-callee", &minic.Module{Name: "t", Funcs: []*minic.Func{
			minic.NewFunc("f", nil, minic.Ret(minic.Call("nosuch"))),
		}}},
		{"builtin-arity", &minic.Module{Name: "t", Funcs: []*minic.Func{
			minic.NewFunc("f", nil, minic.Ret(minic.Call("min", minic.I(1)))),
		}}},
		{"duplicate-function", &minic.Module{Name: "t", Funcs: []*minic.Func{
			minic.NewFunc("f", nil, minic.Ret(minic.I(0))),
			minic.NewFunc("f", nil, minic.Ret(minic.I(1))),
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Compile(tt.mod, isa.AMD64, O0); err == nil {
				t.Error("want compile error")
			}
		})
	}
}

func TestUnknownLevel(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{minic.NewFunc("f", nil, minic.Ret(minic.I(0)))}}
	if _, err := Compile(mod, isa.AMD64, Level("O9")); err == nil {
		t.Error("want error for unknown level")
	}
}

func TestDeepExpressionSpill(t *testing.T) {
	// Build an expression deep enough to exhaust every scratch file
	// (x86 has only two scratch registers), forcing Push/Pop spills.
	e := minic.Expr(minic.V("a"))
	for i := 1; i <= 12; i++ {
		e = minic.Add(minic.Mul(minic.V("a"), minic.I(int64(i))), e)
	}
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("deep", []string{"a"}, minic.Ret(e)),
	}}
	want, err := minic.Run(mod, "deep", &minic.Env{Args: []int64{3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range isa.All() {
		for _, lvl := range Levels() {
			res, err := compileAndRun(t, mod, "deep", arch, lvl, &minic.Env{Args: []int64{3}}, false)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
			}
			if res.Ret != want.Ret {
				t.Errorf("%s/%s: got %d, want %d", arch.Name, lvl, res.Ret, want.Ret)
			}
		}
	}
}

func TestCallsAcrossScratchPressure(t *testing.T) {
	// Nested calls inside deep expressions: exercises the caller-save
	// push/pop protocol around calls.
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("leaf", []string{"a", "b"},
			minic.Ret(minic.Sub(minic.V("a"), minic.V("b")))),
		minic.NewFunc("f", []string{"a"},
			minic.Ret(minic.Add(
				minic.Mul(minic.V("a"), minic.Call("leaf", minic.V("a"), minic.I(1))),
				minic.Call("leaf", minic.Call("leaf", minic.V("a"), minic.I(2)), minic.I(3))))),
	}}
	want, err := minic.Run(mod, "f", &minic.Env{Args: []int64{10}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range isa.All() {
		for _, lvl := range Levels() {
			res, err := compileAndRun(t, mod, "f", arch, lvl, &minic.Env{Args: []int64{10}}, false)
			if err != nil {
				t.Fatalf("%s/%s: %v", arch.Name, lvl, err)
			}
			if res.Ret != want.Ret {
				t.Errorf("%s/%s: got %d, want %d", arch.Name, lvl, res.Ret, want.Ret)
			}
		}
	}
}

func TestRecursionCompiles(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("fib", []string{"a"},
			minic.When(minic.Lt(minic.V("a"), minic.I(2)), minic.Ret(minic.V("a"))),
			minic.Ret(minic.Add(
				minic.Call("fib", minic.Sub(minic.V("a"), minic.I(1))),
				minic.Call("fib", minic.Sub(minic.V("a"), minic.I(2)))))),
	}}
	for _, arch := range isa.All() {
		res, err := compileAndRun(t, mod, "fib", arch, O2, &minic.Env{Args: []int64{15}}, false)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if res.Ret != 610 {
			t.Errorf("%s: fib(15) = %d, want 610", arch.Name, res.Ret)
		}
	}
}

func TestTrapsPropagate(t *testing.T) {
	mod := &minic.Module{Name: "t", Funcs: []*minic.Func{
		minic.NewFunc("boom", []string{"a"}, minic.Ret(minic.Div(minic.I(100), minic.V("a")))),
	}}
	for _, arch := range isa.All() {
		_, err := compileAndRun(t, mod, "boom", arch, O1, &minic.Env{Args: []int64{0}}, false)
		var tr *minic.TrapError
		if !errors.As(err, &tr) || tr.Kind != minic.TrapDivZero {
			t.Errorf("%s: want div-zero trap, got %v", arch.Name, err)
		}
	}
}
