package compiler

import (
	"repro/internal/minic"
)

// AST-level optimization passes. These run before instruction selection and
// are what makes the same source function compile to structurally different
// machine code at different optimization levels: constant folding collapses
// expression trees, dead-branch elimination changes the CFG, inlining melts
// small callees into callers, unrolling multiplies basic blocks, and
// reassociation permutes arithmetic. All passes are semantics-preserving —
// the cross-check against the reference interpreter is part of the compiler
// test suite.

// transform applies the level's AST passes, returning a fresh function.
func transform(f *minic.Func, mod *minic.Module, cfg levelCfg) *minic.Func {
	out := minic.CloneFunc(f)
	if cfg.inline {
		out.Body = inlineBody(out.Body, mod, cfg.inlineDepth)
	}
	if cfg.unroll {
		out.Body = unrollBody(out.Body)
	}
	if cfg.reassoc {
		out.Body = mapExprs(out.Body, reassociate)
	}
	if cfg.constFold {
		out.Body = mapExprs(out.Body, fold)
		out.Body = elideDeadBranches(out.Body)
	}
	return out
}

// --- generic expression rewriting ---

// mapExprs applies fn bottom-up to every expression in the statements.
func mapExprs(ss []minic.Stmt, fn func(minic.Expr) minic.Expr) []minic.Stmt {
	var rewrite func(e minic.Expr) minic.Expr
	rewrite = func(e minic.Expr) minic.Expr {
		switch e := e.(type) {
		case *minic.Bin:
			e.L = rewrite(e.L)
			e.R = rewrite(e.R)
		case *minic.Un:
			e.X = rewrite(e.X)
		case *minic.Load:
			e.Base = rewrite(e.Base)
			e.Index = rewrite(e.Index)
		case *minic.LoadW:
			e.Base = rewrite(e.Base)
			e.Index = rewrite(e.Index)
		case *minic.CallExpr:
			for i := range e.Args {
				e.Args[i] = rewrite(e.Args[i])
			}
		}
		return fn(e)
	}
	var walk func(ss []minic.Stmt) []minic.Stmt
	walk = func(ss []minic.Stmt) []minic.Stmt {
		for _, s := range ss {
			switch s := s.(type) {
			case *minic.Assign:
				s.E = rewrite(s.E)
			case *minic.Store:
				s.Base, s.Index, s.Val = rewrite(s.Base), rewrite(s.Index), rewrite(s.Val)
			case *minic.StoreW:
				s.Base, s.Index, s.Val = rewrite(s.Base), rewrite(s.Index), rewrite(s.Val)
			case *minic.If:
				s.Cond = rewrite(s.Cond)
				s.Then = walk(s.Then)
				s.Else = walk(s.Else)
			case *minic.While:
				s.Cond = rewrite(s.Cond)
				s.Body = walk(s.Body)
			case *minic.Return:
				if s.E != nil {
					s.E = rewrite(s.E)
				}
			case *minic.ExprStmt:
				s.E = rewrite(s.E)
			}
		}
		return ss
	}
	return walk(ss)
}

// --- constant folding ---

// fold collapses constant subexpressions. Trapping operations (x/0) are
// left in place so runtime behaviour is preserved.
func fold(e minic.Expr) minic.Expr {
	switch e := e.(type) {
	case *minic.Bin:
		l, lok := e.L.(*minic.IntLit)
		r, rok := e.R.(*minic.IntLit)
		if lok && rok {
			v, err := minic.EvalBinOp(e.Op, l.V, r.V)
			if err == nil {
				return &minic.IntLit{V: v}
			}
			return e
		}
		// Algebraic identities (safe for two's-complement ints).
		if rok {
			switch {
			case r.V == 0 && (e.Op == minic.OpAdd || e.Op == minic.OpSub ||
				e.Op == minic.OpOr || e.Op == minic.OpXor ||
				e.Op == minic.OpShl || e.Op == minic.OpShr):
				return e.L
			case r.V == 1 && e.Op == minic.OpMul:
				return e.L
			case r.V == 0 && e.Op == minic.OpMul:
				// Only fold 0*x when x is pure (no side effects to drop).
				if isPure(e.L) {
					return &minic.IntLit{V: 0}
				}
			}
		}
		if lok {
			switch {
			case l.V == 0 && e.Op == minic.OpAdd:
				return e.R
			case l.V == 1 && e.Op == minic.OpMul:
				return e.R
			case l.V == 0 && e.Op == minic.OpMul && isPure(e.R):
				return &minic.IntLit{V: 0}
			}
		}
		return e
	case *minic.Un:
		if x, ok := e.X.(*minic.IntLit); ok {
			return &minic.IntLit{V: minic.EvalUnOp(e.Op, x.V)}
		}
		return e
	default:
		return e
	}
}

// isPure reports whether evaluating e has no side effects and cannot trap.
func isPure(e minic.Expr) bool {
	switch e := e.(type) {
	case *minic.IntLit, *minic.StrLit, *minic.VarRef:
		return true
	case *minic.Bin:
		if e.Op == minic.OpDiv || e.Op == minic.OpMod {
			return false // may trap
		}
		return isPure(e.L) && isPure(e.R)
	case *minic.Un:
		return isPure(e.X)
	default:
		return false // loads may trap; calls have side effects
	}
}

// elideDeadBranches removes statically-dead control flow after folding.
func elideDeadBranches(ss []minic.Stmt) []minic.Stmt {
	var out []minic.Stmt
	for _, s := range ss {
		switch s := s.(type) {
		case *minic.If:
			s.Then = elideDeadBranches(s.Then)
			s.Else = elideDeadBranches(s.Else)
			if c, ok := s.Cond.(*minic.IntLit); ok {
				if c.V != 0 {
					out = append(out, s.Then...)
				} else {
					out = append(out, s.Else...)
				}
				continue
			}
			out = append(out, s)
		case *minic.While:
			s.Body = elideDeadBranches(s.Body)
			if c, ok := s.Cond.(*minic.IntLit); ok && c.V == 0 {
				continue // while(0) never runs
			}
			out = append(out, s)
		default:
			out = append(out, s)
		}
	}
	return out
}

// --- inlining ---

// inlineBody replaces calls to single-return leaf functions with the
// substituted return expression. Only calls whose arguments are literals or
// variable references are inlined, so argument evaluation order and
// multiplicity are preserved.
func inlineBody(ss []minic.Stmt, mod *minic.Module, depth int) []minic.Stmt {
	if depth <= 0 {
		return ss
	}
	rewrite := func(e minic.Expr) minic.Expr {
		call, ok := e.(*minic.CallExpr)
		if !ok {
			return e
		}
		callee := mod.Lookup(call.Name)
		if callee == nil || len(callee.Body) != 1 || len(call.Args) != len(callee.Params) {
			return e
		}
		ret, ok := callee.Body[0].(*minic.Return)
		if !ok || ret.E == nil {
			return e
		}
		for _, a := range call.Args {
			switch a.(type) {
			case *minic.IntLit, *minic.VarRef, *minic.StrLit:
			default:
				return e
			}
		}
		// The return expression must reference only parameters (no stray
		// locals that would capture the caller's variables).
		if !onlyRefsParams(ret.E, callee.Params) {
			return e
		}
		sub := make(map[string]minic.Expr, len(call.Args))
		for i, p := range callee.Params {
			sub[p] = call.Args[i]
		}
		return substitute(minic.CloneExpr(ret.E), sub)
	}
	for d := 0; d < depth; d++ {
		ss = mapExprs(ss, rewrite)
	}
	return ss
}

func onlyRefsParams(e minic.Expr, params []string) bool {
	ok := true
	inParams := func(n string) bool {
		for _, p := range params {
			if p == n {
				return true
			}
		}
		return false
	}
	var walk func(e minic.Expr)
	walk = func(e minic.Expr) {
		switch e := e.(type) {
		case *minic.VarRef:
			if !inParams(e.Name) {
				ok = false
			}
		case *minic.Bin:
			walk(e.L)
			walk(e.R)
		case *minic.Un:
			walk(e.X)
		case *minic.Load:
			walk(e.Base)
			walk(e.Index)
		case *minic.LoadW:
			walk(e.Base)
			walk(e.Index)
		case *minic.CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return ok
}

func substitute(e minic.Expr, sub map[string]minic.Expr) minic.Expr {
	switch e := e.(type) {
	case *minic.VarRef:
		if r, ok := sub[e.Name]; ok {
			return minic.CloneExpr(r)
		}
		return e
	case *minic.Bin:
		e.L = substitute(e.L, sub)
		e.R = substitute(e.R, sub)
	case *minic.Un:
		e.X = substitute(e.X, sub)
	case *minic.Load:
		e.Base = substitute(e.Base, sub)
		e.Index = substitute(e.Index, sub)
	case *minic.LoadW:
		e.Base = substitute(e.Base, sub)
		e.Index = substitute(e.Index, sub)
	case *minic.CallExpr:
		for i := range e.Args {
			e.Args[i] = substitute(e.Args[i], sub)
		}
	}
	return e
}

// --- loop unrolling ---

// maxUnrollTrips bounds full unrolling.
const maxUnrollTrips = 4

// unrollBody fully unrolls the canonical counted-loop pattern emitted by
// minic.For when the trip count is a small constant:
//
//	i = C0; while (i < C1) { body...; i = i + 1 }
//
// The body must not touch i (other than the increment), break, continue or
// return, and must be side-effect-ordered the same after expansion (always
// true for straight-line duplication).
func unrollBody(ss []minic.Stmt) []minic.Stmt {
	var out []minic.Stmt
	for idx := 0; idx < len(ss); idx++ {
		s := ss[idx]
		// Recurse first.
		switch s := s.(type) {
		case *minic.If:
			s.Then = unrollBody(s.Then)
			s.Else = unrollBody(s.Else)
		case *minic.While:
			s.Body = unrollBody(s.Body)
		}
		if idx+1 < len(ss) {
			if expanded, ok := tryUnroll(ss[idx], ss[idx+1]); ok {
				out = append(out, expanded...)
				idx++ // consume the While too
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

func tryUnroll(initStmt, loopStmt minic.Stmt) ([]minic.Stmt, bool) {
	init, ok := initStmt.(*minic.Assign)
	if !ok {
		return nil, false
	}
	start, ok := init.E.(*minic.IntLit)
	if !ok {
		return nil, false
	}
	loop, ok := loopStmt.(*minic.While)
	if !ok {
		return nil, false
	}
	cond, ok := loop.Cond.(*minic.Bin)
	if !ok || cond.Op != minic.OpLt {
		return nil, false
	}
	cv, ok := cond.L.(*minic.VarRef)
	if !ok || cv.Name != init.Name {
		return nil, false
	}
	limit, ok := cond.R.(*minic.IntLit)
	if !ok {
		return nil, false
	}
	trips := limit.V - start.V
	if trips <= 0 || trips > maxUnrollTrips {
		return nil, false
	}
	if len(loop.Body) == 0 {
		return nil, false
	}
	// Last body statement must be the canonical increment.
	incr, ok := loop.Body[len(loop.Body)-1].(*minic.Assign)
	if !ok || incr.Name != init.Name {
		return nil, false
	}
	add, ok := incr.E.(*minic.Bin)
	if !ok || add.Op != minic.OpAdd {
		return nil, false
	}
	av, aok := add.L.(*minic.VarRef)
	one, ook := add.R.(*minic.IntLit)
	if !aok || !ook || av.Name != init.Name || one.V != 1 {
		return nil, false
	}
	inner := loop.Body[:len(loop.Body)-1]
	if !unrollable(inner, init.Name) {
		return nil, false
	}
	var out []minic.Stmt
	for k := start.V; k < limit.V; k++ {
		out = append(out, &minic.Assign{Name: init.Name, E: &minic.IntLit{V: k}})
		out = append(out, minic.CloneStmts(inner)...)
	}
	out = append(out, &minic.Assign{Name: init.Name, E: &minic.IntLit{V: limit.V}})
	return out, true
}

// unrollable reports whether the loop body is safe to duplicate: no control
// transfers out of the loop and no writes to the induction variable.
func unrollable(ss []minic.Stmt, ind string) bool {
	for _, s := range ss {
		switch s := s.(type) {
		case *minic.Assign:
			if s.Name == ind {
				return false
			}
		case *minic.Break, *minic.Continue, *minic.Return:
			return false
		case *minic.If:
			if !unrollable(s.Then, ind) || !unrollable(s.Else, ind) {
				return false
			}
		case *minic.While:
			if !unrollable(s.Body, ind) {
				return false
			}
		}
	}
	return true
}

// --- reassociation (Ofast) ---

// reassociate rotates left-leaning chains of associative operators into
// right-leaning ones: (a op b) op c => a op (b op c). Integer add, mul, and
// the bitwise ops are fully associative in two's complement, so this is
// exact — but only when the subtrees are pure, to preserve side-effect and
// trap ordering.
func reassociate(e minic.Expr) minic.Expr {
	b, ok := e.(*minic.Bin)
	if !ok || !assocOp(b.Op) {
		return e
	}
	l, ok := b.L.(*minic.Bin)
	if !ok || l.Op != b.Op {
		return e
	}
	if !isPure(l.L) || !isPure(l.R) || !isPure(b.R) {
		return e
	}
	return &minic.Bin{Op: b.Op, L: l.L, R: &minic.Bin{Op: b.Op, L: l.R, R: b.R}}
}

func assocOp(op minic.BinOp) bool {
	switch op {
	case minic.OpAdd, minic.OpMul, minic.OpAnd, minic.OpOr, minic.OpXor:
		return true
	}
	return false
}
