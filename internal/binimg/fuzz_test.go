package binimg

import "testing"

// FuzzImageDecode hardens the image parser: arbitrary bytes must never
// panic, and valid images must round-trip.
func FuzzImageDecode(f *testing.F) {
	f.Add(Encode(sampleImage()))
	f.Add([]byte("PCKO01garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Decode(Encode(im))
		if err != nil {
			t.Fatalf("accepted image fails re-decode: %v", err)
		}
		if re.LibName != im.LibName || len(re.Text) != len(im.Text) {
			t.Fatal("re-decode drift")
		}
	})
}
