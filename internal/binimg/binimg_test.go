package binimg

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/faultinject"
)

func sampleImage() *Image {
	return &Image{
		Arch:     "xarm64",
		LibName:  "libstagefright",
		OptLevel: "O2",
		Text:     []byte{1, 2, 3, 4, 5},
		Rodata:   []byte("hello\x00"),
		Imports:  []string{"memmove", "strlen"},
		Symbols: []Symbol{
			{Name: "f", Addr: TextBase, Size: 3},
			{Name: "g", Addr: TextBase + 3, Size: 2},
		},
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	im := sampleImage()
	got, err := Decode(Encode(im))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, im)
	}
}

func TestEncodeDecodeRoundtripQuick(t *testing.T) {
	f := func(text, rodata []byte, lib string, stripped bool) bool {
		im := &Image{
			Arch: "x86", LibName: lib, OptLevel: "O0",
			Text: text, Rodata: rodata, Stripped: stripped,
		}
		got, err := Decode(Encode(im))
		if err != nil {
			return false
		}
		// nil and empty slices are equivalent on the wire.
		return string(got.Text) == string(text) &&
			string(got.Rodata) == string(rodata) &&
			got.LibName == lib && got.Stripped == stripped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := Encode(sampleImage())
	for _, i := range []int{0, 7, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xff
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
	if _, err := Decode(enc[:4]); err == nil {
		t.Error("short input not rejected")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("nil input not rejected")
	}
}

func TestDecodeFaultInjection(t *testing.T) {
	// The decode-corruption fault point simulates bit rot on a structurally
	// valid image (the checksum passes; the payload lies). It keys on the
	// library name so chaos tests can break one library's images only.
	enc := Encode(sampleImage())
	injected := errors.New("injected bit rot")
	disarm := faultinject.Arm(faultinject.DecodeCorrupt, "libstagefright", injected)
	defer disarm()
	_, err := Decode(enc)
	if !errors.Is(err, ErrBadImage) || !errors.Is(err, injected) {
		t.Fatalf("injected decode fault = %v, want ErrBadImage wrapping the injected error", err)
	}
	// Other libraries decode fine while the fault is armed.
	other := sampleImage()
	other.LibName = "libother"
	if _, err := Decode(Encode(other)); err != nil {
		t.Errorf("unrelated library affected by armed fault: %v", err)
	}
	disarm()
	if _, err := Decode(enc); err != nil {
		t.Errorf("decode still failing after disarm: %v", err)
	}
}

func TestStrip(t *testing.T) {
	im := sampleImage()
	st := im.Strip()
	if !st.Stripped || st.Symbols != nil {
		t.Error("Strip did not remove symbols")
	}
	if len(im.Symbols) != 2 {
		t.Error("Strip mutated the original")
	}
	st.Text[0] = 99
	if im.Text[0] == 99 {
		t.Error("Strip shares text with original")
	}
}

func TestSymbolLookup(t *testing.T) {
	im := sampleImage()
	if s, ok := im.Lookup("g"); !ok || s.Addr != TextBase+3 {
		t.Errorf("Lookup(g) = %+v, %v", s, ok)
	}
	if _, ok := im.Lookup("missing"); ok {
		t.Error("Lookup(missing) should fail")
	}
	if s, ok := im.SymbolAt(TextBase + 1); !ok || s.Name != "f" {
		t.Errorf("SymbolAt(mid-f) = %+v, %v", s, ok)
	}
	if s, ok := im.SymbolAt(TextBase + 4); !ok || s.Name != "g" {
		t.Errorf("SymbolAt(mid-g) = %+v, %v", s, ok)
	}
	if _, ok := im.SymbolAt(TextBase + 100); ok {
		t.Error("SymbolAt past end should fail")
	}
	if _, ok := im.SymbolAt(TextBase - 1); ok {
		t.Error("SymbolAt before start should fail")
	}
}
