// Package binimg defines the binary image container used for compiled
// libraries — the repository's stand-in for the ELF shared objects the paper
// analyzes. An image carries the text section, interned read-only data, an
// import table (the PLT analog) and, unless stripped, a function symbol
// table. PATCHECKO's pipeline operates on stripped images; ground-truth
// symbol tables are retained out-of-band by the corpus for evaluation only,
// mirroring how the paper strips its corpus "for our problem setting" while
// keeping debug builds to establish ground truth.
package binimg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/faultinject"
)

// TextBase is the virtual address where .text is mapped.
const TextBase = 0x400000

// Magic identifies the image format.
var Magic = [6]byte{'P', 'C', 'K', 'O', '0', '1'}

// ErrBadImage reports a malformed image file.
var ErrBadImage = errors.New("binimg: malformed image")

// Symbol is one function symbol.
type Symbol struct {
	Name string
	Addr uint64
	Size uint64
}

// Image is one compiled library binary.
type Image struct {
	Arch     string
	LibName  string
	OptLevel string
	Text     []byte // mapped at TextBase
	Rodata   []byte // mapped at minic.RodataBase
	Imports  []string
	Symbols  []Symbol // sorted by Addr; nil when stripped
	Stripped bool
}

// Strip returns a copy of the image without its symbol table.
func (im *Image) Strip() *Image {
	out := *im
	out.Symbols = nil
	out.Stripped = true
	out.Text = append([]byte(nil), im.Text...)
	out.Rodata = append([]byte(nil), im.Rodata...)
	out.Imports = append([]string(nil), im.Imports...)
	return &out
}

// Lookup returns the symbol with the given name.
func (im *Image) Lookup(name string) (Symbol, bool) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// SymbolAt returns the symbol covering the given address.
func (im *Image) SymbolAt(addr uint64) (Symbol, bool) {
	i := sort.Search(len(im.Symbols), func(i int) bool {
		return im.Symbols[i].Addr > addr
	})
	if i == 0 {
		return Symbol{}, false
	}
	s := im.Symbols[i-1]
	if addr < s.Addr+s.Size {
		return s, true
	}
	return Symbol{}, false
}

// Encode serializes the image.
func Encode(im *Image) []byte {
	var w writer
	w.bytes(Magic[:])
	w.str(im.Arch)
	w.str(im.LibName)
	w.str(im.OptLevel)
	w.u8(boolByte(im.Stripped))
	w.blob(im.Text)
	w.blob(im.Rodata)
	w.u32(uint32(len(im.Imports)))
	for _, s := range im.Imports {
		w.str(s)
	}
	w.u32(uint32(len(im.Symbols)))
	for _, s := range im.Symbols {
		w.str(s.Name)
		w.u64(s.Addr)
		w.u64(s.Size)
	}
	sum := crc32.ChecksumIEEE(w.buf)
	w.u32(sum)
	return w.buf
}

// Decode parses an encoded image, validating the trailing checksum.
func Decode(b []byte) (*Image, error) {
	if len(b) < len(Magic)+4 {
		return nil, fmt.Errorf("%w: too short", ErrBadImage)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadImage)
	}
	r := reader{buf: body}
	var magic [6]byte
	copy(magic[:], r.bytes(6))
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadImage)
	}
	im := &Image{}
	im.Arch = r.str()
	im.LibName = r.str()
	if err := faultinject.Fire(faultinject.DecodeCorrupt, im.LibName); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadImage, err)
	}
	im.OptLevel = r.str()
	im.Stripped = r.u8() != 0
	im.Text = r.blob()
	im.Rodata = r.blob()
	nImp := int(r.u32())
	if r.err == nil && nImp > 1<<20 {
		return nil, fmt.Errorf("%w: absurd import count", ErrBadImage)
	}
	for i := 0; i < nImp && r.err == nil; i++ {
		im.Imports = append(im.Imports, r.str())
	}
	nSym := int(r.u32())
	if r.err == nil && nSym > 1<<20 {
		return nil, fmt.Errorf("%w: absurd symbol count", ErrBadImage)
	}
	for i := 0; i < nSym && r.err == nil; i++ {
		s := Symbol{Name: r.str()}
		s.Addr = r.u64()
		s.Size = r.u64()
		im.Symbols = append(im.Symbols, s)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("%w: trailing garbage", ErrBadImage)
	}
	sort.Slice(im.Symbols, func(i, j int) bool { return im.Symbols[i].Addr < im.Symbols[j].Addr })
	return im, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.buf = append(w.buf, b...)
}
func (w *writer) blob(b []byte) {
	w.u32(uint32(len(b)))
	w.bytes(b)
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("%w: truncated", ErrBadImage)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) blob() []byte {
	n := int(r.u32())
	return append([]byte(nil), r.bytes(n)...)
}

func (r *reader) str() string {
	n := int(r.u32())
	return string(r.bytes(n))
}
