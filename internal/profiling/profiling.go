// Package profiling wires the conventional -cpuprofile/-memprofile flags
// into the repo's CLIs, so scan and experiment runs can be fed straight to
// `go tool pprof` without ad-hoc instrumentation.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered by AddFlags and the
// in-flight CPU profile between Start and Stop.
type Flags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on the flag set (pass
// flag.CommandLine for a command's top-level flags).
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to `file` on exit")
	return f
}

// Start begins CPU profiling when -cpuprofile was given. Callers must pair
// it with Stop on every exit path (a deferred Stop is the usual shape).
func (f *Flags) Start() error {
	if f.CPU == "" {
		return nil
	}
	file, err := os.Create(f.CPU)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("profiling: %s: %w", f.CPU, err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile started by Start and, when -memprofile was
// given, snapshots the heap after a final GC (so the profile reflects live
// objects, not collectable garbage). Safe to call when profiling is off.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		err := f.cpuFile.Close()
		f.cpuFile = nil
		if err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Mem == "" {
		return nil
	}
	file, err := os.Create(f.Mem)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer file.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(file); err != nil {
		return fmt.Errorf("profiling: %s: %w", f.Mem, err)
	}
	return nil
}
