package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestStartStopWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := make([]float64, 0, 1024)
	for i := 0; i < 1_000_000; i++ {
		sink = append(sink[:0], float64(i))
	}
	_ = sink
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestStopWithoutProfilingIsANoOp(t *testing.T) {
	var f Flags
	if err := f.Stop(); err != nil {
		t.Fatalf("Stop without Start: %v", err)
	}
	if err := f.Start(); err != nil {
		t.Fatalf("Start with no destinations: %v", err)
	}
	if err := f.Stop(); err != nil {
		t.Fatal(err)
	}
}
