package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V), plus the ablations DESIGN.md calls out. Each benchmark
// measures the cost of regenerating its artifact and prints the artifact
// itself once, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The shared suite (corpus generation +
// model training) is built once outside the timed regions.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/patchecko"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
	benchErr   error
)

// benchScale can be overridden via PATCHECKO_BENCH_SCALE=tiny|small|medium.
func benchScale() corpus.Scale {
	if name := os.Getenv("PATCHECKO_BENCH_SCALE"); name != "" {
		if s, err := corpus.ScaleByName(name); err == nil {
			return s
		}
	}
	return corpus.ScaleSmall
}

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() {
		benchSuite, benchErr = experiments.NewSuite(context.Background(), experiments.Config{
			Scale: benchScale(),
			Seed:  42,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

// caseDevice/caseCVE pin the paper's §IV case study.
const (
	caseCVE = "CVE-2018-9412"
)

func caseDevice() string { return corpus.ThingOS.Name }

var printOnce sync.Map

// printArtifact renders an artifact exactly once per benchmark name.
func printArtifact(name string, render func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println()
		render()
	}
}

// BenchmarkFig8Training regenerates the Fig. 8 training curves: it retrains
// the 6-layer network on the suite's dataset each iteration.
func BenchmarkFig8Training(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var r experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		r = s.Fig8()
	}
	b.StopTimer()
	printArtifact("fig8", func() { r.Render(os.Stdout) })
}

// BenchmarkFig7FalsePositiveRate regenerates the per-CVE static-stage FP
// rates on both devices for both query versions.
func BenchmarkFig7FalsePositiveRate(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.Fig7Result
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("fig7", func() { r.Render(os.Stdout) })
}

// BenchmarkTable3DynamicProfiling regenerates the case-study dynamic
// feature profiles (Table III).
func BenchmarkTable3DynamicProfiling(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.Table3Result
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.Table3(context.Background(), caseDevice(), caseCVE)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("table3", func() { r.Render(os.Stdout) })
}

// BenchmarkTable4RankingVulnerable regenerates the Table IV similarity
// ranking (vulnerable query).
func BenchmarkTable4RankingVulnerable(b *testing.B) {
	benchRanking(b, patchecko.QueryVulnerable, "table4")
}

// BenchmarkTable5RankingPatched regenerates the Table V similarity ranking
// (patched query).
func BenchmarkTable5RankingPatched(b *testing.B) {
	benchRanking(b, patchecko.QueryPatched, "table5")
}

func benchRanking(b *testing.B, mode patchecko.QueryMode, tag string) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.RankResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.Ranking(context.Background(), caseDevice(), caseCVE, mode, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact(tag, func() { r.Render(os.Stdout) })
}

// BenchmarkTable6VulnerablePipeline regenerates Table VI: the full
// three-stage pipeline for all 25 CVEs, vulnerable query, device A.
func BenchmarkTable6VulnerablePipeline(b *testing.B) {
	benchPipeline(b, patchecko.QueryVulnerable, "table6")
}

// BenchmarkTable7PatchedPipeline regenerates Table VII (patched query).
func BenchmarkTable7PatchedPipeline(b *testing.B) {
	benchPipeline(b, patchecko.QueryPatched, "table7")
}

func benchPipeline(b *testing.B, mode patchecko.QueryMode, tag string) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.PipelineResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.Pipeline(context.Background(), caseDevice(), mode)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact(tag, func() { r.Render(os.Stdout) })
}

// BenchmarkTable8PatchDetection regenerates Table VIII: per-CVE patch
// verdicts vs ground truth on both devices.
func BenchmarkTable8PatchDetection(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r1, r2 experiments.VerdictResult
		err    error
	)
	for i := 0; i < b.N; i++ {
		r1, err = s.Verdicts(context.Background(), corpus.ThingOS.Name)
		if err != nil {
			b.Fatal(err)
		}
		r2, err = s.Verdicts(context.Background(), corpus.Pebble2XL.Name)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("table8", func() {
		r1.Render(os.Stdout)
		fmt.Println()
		r2.Render(os.Stdout)
	})
}

// BenchmarkHeadlines regenerates the §V headline numbers.
func BenchmarkHeadlines(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		h   experiments.Headline
		err error
	)
	for i := 0; i < b.N; i++ {
		h, err = s.Headlines(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("headline", func() {
		fmt.Printf("headline: DL accuracy %.1f%% (paper >93%%), AUC %.3f, top-3 %.0f%% (paper 100%%), patch accuracy %.0f%% (paper 96%%)\n",
			100*h.TestAccuracy, h.TestAUC, 100*h.Top3Rate, 100*h.PatchAccuracy)
	})
}

// BenchmarkScanFirmwareParallel measures the whole-firmware scan grid at
// one worker vs one per core. Each iteration uses a fresh analyzer so the
// reference cache starts cold and both configurations pay the same
// once-per-CVE×mode profiling cost; the printed stats show that cost being
// amortized (misses <= CVEs×2, everything else a hit) and the reports are
// identical at any worker count.
func BenchmarkScanFirmwareParallel(b *testing.B) {
	s := suite(b)
	fw := s.Firmware[corpus.ThingOS.Name]
	parallel := runtime.NumCPU()
	if parallel < 2 {
		parallel = 2 // keep the concurrent path exercised even on one core
	}
	for _, workers := range []int{1, parallel} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var report *patchecko.Report
			for i := 0; i < b.N; i++ {
				an := patchecko.NewAnalyzer(s.Model, s.DB)
				an.Workers = workers
				var err error
				report, err = an.ScanFirmware(context.Background(), fw)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			printArtifact(fmt.Sprintf("scan-parallel-%d", workers), func() {
				st := report.Stats
				fmt.Printf("scan grid (workers=%d): %d scans over %d images x %d CVEs x 2 modes; "+
					"reference cache %d hits / %d misses (<= %d = once per CVE x mode); "+
					"prepare %v, scan %v\n",
					st.Workers, st.ScansRun, st.Images, st.CVEs,
					st.CacheHits, st.CacheMisses, st.CVEs*2, st.PrepareWall, st.ScanWall)
			})
		})
	}
}

// BenchmarkAblationDistance sweeps the similarity metric (Minkowski p,
// raw vs log-scaled features).
func BenchmarkAblationDistance(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.AblationResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.AblateDistance(context.Background(), caseDevice())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("abl-dist", func() { r.Render(os.Stdout) })
}

// BenchmarkAblationEnvironments sweeps K, the number of execution
// environments.
func BenchmarkAblationEnvironments(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.AblationResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.AblateEnvironments(context.Background(), caseDevice())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("abl-env", func() { r.Render(os.Stdout) })
}

// BenchmarkAblationExploitReplay regenerates Table VIII with the
// patch-diff-guided replay extension enabled (the paper's proposed fix for
// its single misclassification).
func BenchmarkAblationExploitReplay(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.VerdictResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.VerdictsWithReplay(context.Background(), corpus.ThingOS.Name)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("abl-replay", func() {
		fmt.Println("Table VIII with exploit replay:")
		r.Render(os.Stdout)
	})
}

// BenchmarkAblationHybrid measures static-only vs hybrid candidate pruning.
func BenchmarkAblationHybrid(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.HybridResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.AblateHybrid(context.Background(), caseDevice())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("abl-hybrid", func() { r.Render(os.Stdout) })
}

// BenchmarkBaselineComparison regenerates the prior-art comparison: the
// trained detector vs BinDiff-style matching vs graph embeddings on
// static-stage retrieval (the paper's §VI positioning).
func BenchmarkBaselineComparison(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.BaselineResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.Baselines(caseDevice())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("baselines", func() { r.Render(os.Stdout) })
}

// BenchmarkAblationFeatureGroups retrains the detector per Table-I feature
// group to quantify each group's contribution.
func BenchmarkAblationFeatureGroups(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.FeatureGroupResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.AblateFeatureGroups()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("abl-featgroups", func() { r.Render(os.Stdout) })
}

// BenchmarkAblationObfuscation builds an obfuscated firmware variant and
// measures each scorer's retrieval degradation.
func BenchmarkAblationObfuscation(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	var (
		r   experiments.ObfuscationResult
		err error
	)
	for i := 0; i < b.N; i++ {
		r, err = s.AblateObfuscation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printArtifact("abl-obf", func() { r.Render(os.Stdout) })
}
