// Command corpusgen generates the evaluation corpus to disk: the
// vulnerability database (Dataset II) and the stripped firmware image sets
// of both devices (Dataset III).
//
// Usage:
//
//	corpusgen -out ./corpus -scale small -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/binimg"
	"repro/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out       = flag.String("out", "corpus", "output directory")
		scaleName = flag.String("scale", "small", "corpus scale: tiny|small|medium|large")
		seed      = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	scale, err := corpus.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	fmt.Printf("building vulnerability database (25 CVEs, %d envs each)...\n", scale.NumEnvs)
	db, err := corpus.BuildDB(scale, *seed)
	if err != nil {
		return err
	}
	raw, err := db.Marshal()
	if err != nil {
		return err
	}
	dbPath := filepath.Join(*out, "vulndb.json")
	if err := os.WriteFile(dbPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s (%d bytes)\n", dbPath, len(raw))

	for _, dev := range []corpus.Device{corpus.ThingOS, corpus.Pebble2XL} {
		fmt.Printf("building firmware for %s (%s)...\n", dev.Name, dev.Arch.Name)
		fw, err := corpus.BuildFirmware(dev, scale)
		if err != nil {
			return err
		}
		dir := filepath.Join(*out, dev.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		var manifest []byte
		for _, im := range fw.Images {
			p := filepath.Join(dir, im.LibName+".img")
			if err := os.WriteFile(p, binimg.Encode(im), 0o644); err != nil {
				return err
			}
			manifest = append(manifest, im.LibName+".img\n"...)
		}
		// images.txt records the firmware's image order (CVE-declaration
		// order, NOT alphabetical). Scan clients that re-assemble the image
		// set — the patcheckod service submits images as a list — must follow
		// it: the engine's deterministic reduction tie-breaks on image order,
		// so byte-identical reports need byte-identical ordering.
		if err := os.WriteFile(filepath.Join(dir, "images.txt"), manifest, 0o644); err != nil {
			return err
		}
		fmt.Printf("  wrote %d stripped library images + images.txt to %s\n", len(fw.Images), dir)
	}
	return nil
}
