// Command patcheckoctl is the scripted client for the patcheckod scan
// service: it submits a firmware image directory as one scan job, waits for
// the result, and writes the served Report bytes verbatim — which the CI
// smoke test compares against the committed golden report.
//
//	patcheckoctl submit -addr http://localhost:8844 \
//	    -dir corpus/thingos-1.0 -device thingos-1.0 -arch xarm32 \
//	    -normalize -out report.json
//	patcheckoctl health  -addr http://localhost:8844
//	patcheckoctl metrics -addr http://localhost:8844
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "submit":
		err = runSubmit(os.Args[2:])
	case "health":
		err = runGet(os.Args[2:], "/healthz")
	case "metrics":
		err = runGet(os.Args[2:], "/metrics")
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "patcheckoctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  patcheckoctl submit  -addr URL -dir DIR -device NAME -arch ARCH
                       [-manifest FILE] [-tenant T] [-deadline-ms N]
                       [-static-only] [-no-wait] [-normalize] [-out FILE]
  patcheckoctl health  -addr URL
  patcheckoctl metrics -addr URL

submit reads DIR's library images in the order of its images.txt manifest
(falling back to sorted filenames) — the order matters: the engine
tie-breaks on it, so byte-identical reports need the corpusgen order.`)
}

// submission mirrors server.Submission's wire form.
type submission struct {
	Tenant     string   `json:"tenant,omitempty"`
	Device     string   `json:"device"`
	Arch       string   `json:"arch"`
	Images     [][]byte `json:"images"`
	DeadlineMS int64    `json:"deadline_ms,omitempty"`
	StaticOnly bool     `json:"static_only,omitempty"`
}

// imageOrder returns DIR's .img files in submission order: the images.txt
// manifest when present (corpusgen writes it in the engine's canonical
// order), sorted filenames otherwise.
func imageOrder(dir, manifest string) ([]string, error) {
	if manifest == "" {
		manifest = filepath.Join(dir, "images.txt")
	}
	if f, err := os.Open(manifest); err == nil {
		defer f.Close()
		var names []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				names = append(names, line)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("%s: %w", manifest, err)
		}
		return names, nil
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && filepath.Ext(de.Name()) == ".img" {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func runSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "http://localhost:8844", "patcheckod base URL")
		dir        = fs.String("dir", "", "firmware image directory")
		manifest   = fs.String("manifest", "", "image-order manifest (default DIR/images.txt)")
		device     = fs.String("device", "", "device name recorded on the report")
		arch       = fs.String("arch", "", "device architecture")
		tenant     = fs.String("tenant", "", "tenant id for admission accounting")
		deadlineMS = fs.Int64("deadline-ms", 0, "per-job deadline in ms (0 = server default)")
		staticOnly = fs.Bool("static-only", false, "request the degraded static-only pipeline")
		noWait     = fs.Bool("no-wait", false, "print the job id and exit without waiting")
		normalize  = fs.Bool("normalize", false, "fetch the report in normalized comparison form")
		out        = fs.String("out", "", "write the report to this file (default stdout)")
		timeout    = fs.Duration("timeout", 5*time.Minute, "overall wait timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *arch == "" {
		return fmt.Errorf("-dir and -arch are required")
	}

	names, err := imageOrder(*dir, *manifest)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("%s: no images", *dir)
	}
	sub := submission{
		Tenant: *tenant, Device: *device, Arch: *arch,
		DeadlineMS: *deadlineMS, StaticOnly: *staticOnly,
	}
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(*dir, name))
		if err != nil {
			return err
		}
		sub.Images = append(sub.Images, raw)
	}

	body, err := json.Marshal(sub)
	if err != nil {
		return err
	}
	resp, err := http.Post(*addr+"/scan", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	ack, err := readAll(resp)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	var acked struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(ack, &acked); err != nil || acked.Job == "" {
		return fmt.Errorf("submit: malformed ack: %s", ack)
	}
	fmt.Fprintf(os.Stderr, "patcheckoctl: job %s accepted\n", acked.Job)
	if *noWait {
		fmt.Println(acked.Job)
		return nil
	}

	state, err := waitTerminal(*addr, acked.Job, *timeout)
	if err != nil {
		return err
	}
	if state != "done" {
		return fmt.Errorf("job %s terminated %s", acked.Job, state)
	}

	reportURL := *addr + "/jobs/" + acked.Job + "/report"
	if *normalize {
		reportURL += "?normalize=1"
	}
	resp, err = http.Get(reportURL)
	if err != nil {
		return err
	}
	report, err := readAll(resp)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if *out != "" {
		return os.WriteFile(*out, report, 0o644)
	}
	_, err = os.Stdout.Write(report)
	return err
}

// waitTerminal polls the job until it leaves queued/running.
func waitTerminal(addr, id string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(addr + "/jobs/" + id)
		if err != nil {
			return "", err
		}
		raw, err := readAll(resp)
		if err != nil {
			return "", fmt.Errorf("status: %w", err)
		}
		var st struct {
			State string `json:"state"`
			Error *struct {
				Kind string `json:"kind"`
				Msg  string `json:"msg"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return "", fmt.Errorf("status: malformed: %s", raw)
		}
		switch st.State {
		case "queued", "running":
		default:
			if st.Error != nil {
				fmt.Fprintf(os.Stderr, "patcheckoctl: job %s: %s: %s\n", id, st.Error.Kind, st.Error.Msg)
			}
			return st.State, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("timed out waiting for job %s (last state %s)", id, st.State)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func runGet(args []string, path string) error {
	fs := flag.NewFlagSet(path, flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8844", "patcheckod base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := http.Get(*addr + path)
	if err != nil {
		return err
	}
	raw, err := readAll(resp)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(raw)
	return err
}

// readAll drains and closes the response, turning non-2xx statuses into
// errors carrying the typed rejection body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return raw, nil
}
