// Command patcheckovet is the repo's invariant multichecker: it runs the
// internal/lint analyzers (determinism, errtaxonomy, ctxflow,
// atomiccounter) over type-checked packages under the `go vet -vettool`
// protocol:
//
//	go build -o bin/patcheckovet ./cmd/patcheckovet
//	go vet -vettool=$PWD/bin/patcheckovet ./...
//
// (`make lint` does exactly that.) The module vendors nothing, so instead of
// golang.org/x/tools/go/analysis/unitchecker this is a stdlib
// reimplementation of the same contract: cmd/go hands the tool a JSON config
// per package — file lists, the import map, and compiled export data for
// every dependency — and the tool type-checks the package, runs the
// analyzers, writes the (empty: the suite is fact-free) .vetx facts file,
// prints diagnostics to stderr and exits 2 when it found any.
//
// Per-analyzer package scoping and the //patchecko:allow escape directive
// are applied by internal/lint; see DESIGN.md "Enforced invariants".
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint"
)

// vetConfig is the per-package configuration cmd/go writes for a vettool.
// Field set and semantics follow x/tools' unitchecker.Config, which is the
// de-facto specification of the protocol.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("patcheckovet: ")

	fs := flag.NewFlagSet("patcheckovet", flag.ExitOnError)
	fs.Var(versionFlag{}, "V", "print version and exit")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit JSON output")
	fs.Int("c", -1, "display offending line with this many lines of context (ignored)")
	fs.Bool("fix", false, "apply suggested fixes (none are suggested; ignored)")
	fs.Parse(os.Args[1:])

	if *flagsFlag {
		// No analyzer-selection flags: the suite always runs whole, with
		// scoping decided per package by internal/lint.
		fmt.Println("[]")
		return
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("this tool speaks the `go vet -vettool` protocol; run it via `make lint` or `go vet -vettool=$(pwd)/bin/patcheckovet ./...`")
	}
	diags, err := run(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if len(diags) == 0 {
		return
	}
	if *jsonFlag {
		printJSON(diags)
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
	}
	os.Exit(2)
}

func run(cfgPath string) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("%s: %w", cfgPath, err)
	}

	// The suite exports no facts, but cmd/go expects the facts file to
	// appear regardless — write it before anything can fail.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("patcheckovet-no-facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	// Dependency-only invocation: cmd/go just wants the facts file.
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	tc := &types.Config{
		Importer: exportDataImporter(fset, &cfg),
		Sizes:    types.SizesFor(compiler, arch),
	}
	if tc.Sizes == nil {
		tc.Sizes = types.SizesFor("gc", runtime.GOARCH)
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	info := lint.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}

	unit := &lint.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	return lint.Run(unit, lint.Analyzers, true), nil
}

// exportDataImporter resolves imports through the vet config's ImportMap and
// reads compiled export data from its PackageFile table, using the stdlib gc
// importer. Packages are cached per invocation.
func exportDataImporter(fset *token.FileSet, cfg *vetConfig) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	base := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return &mappedImporter{m: cfg.ImportMap, base: base}
}

type mappedImporter struct {
	m    map[string]string
	base types.ImporterFrom
}

func (i *mappedImporter) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i *mappedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := i.m[path]; ok {
		path = mapped
	}
	return i.base.ImportFrom(path, dir, mode)
}

// printJSON emits diagnostics in (a subset of) the unitchecker JSON shape:
// {"<pkg>": {"<analyzer>": [{"posn": ..., "message": ...}]}}.
func printJSON(diags []lint.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    d.Pos.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{"patcheckovet": byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	enc.Encode(out)
}

// versionFlag implements -V=full: cmd/go fingerprints vet tools by this
// line, hashing the executable so rebuilt tools invalidate its cache.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	fmt.Printf("%s version devel comments-go-here buildID=%x\n", exe, h.Sum(nil))
	os.Exit(0)
	return nil
}
