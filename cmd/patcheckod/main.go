// Command patcheckod is the resident scan service: a long-lived HTTP/JSON
// daemon over the patchecko engine with admission control, retry/backoff,
// load shedding and a crash-safe job journal (see internal/server).
//
// Start it:
//
//	patcheckod -addr :8844 -model model.json -db corpus/vulndb.json \
//	    -journal /var/lib/patcheckod/journal.jsonl
//
// Submit work with patcheckoctl, or directly:
//
//	POST /scan                 {"device":...,"arch":...,"images":[...]}
//	GET  /jobs/{id}            job status
//	GET  /jobs/{id}/report     the Report (add ?normalize=1 for comparison form)
//	GET  /jobs/{id}/events     the job's trace events as JSONL
//	DELETE /jobs/{id}          cancel
//	GET  /healthz /readyz /metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cas"
	"repro/internal/detector"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/vulndb"
	"repro/patchecko"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "patcheckod:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	fs := flag.NewFlagSet("patcheckod", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8844", "listen address")
		modelPath = fs.String("model", "model.json", "trained model")
		dbPath    = fs.String("db", "vulndb.json", "vulnerability database")

		queueDepth  = fs.Int("queue-depth", 64, "admission queue bound; submissions beyond it get a typed 429")
		workers     = fs.Int("workers", 2, "job worker pool size (<0 = admit-only: journal jobs, run nothing)")
		scanWorkers = fs.Int("scan-workers", runtime.NumCPU(), "engine parallelism within one job (results identical at any count)")
		perTenant   = fs.Int("per-tenant", 0, "per-tenant in-flight job cap (0 = unlimited)")

		retryBudget = fs.Int("retry-budget", 2, "re-attempts allowed per job for retryable scan errors")
		retryBase   = fs.Duration("retry-base", 100*time.Millisecond, "first retry backoff (doubles per attempt, ±50% jitter)")
		retryMax    = fs.Duration("retry-max", 5*time.Second, "retry backoff cap")

		deadline = fs.Duration("deadline", 0, "per-job wall-clock bound (0 = none); the last quarter degrades to static-only")
		shed     = fs.Float64("shed", 0, "queue fraction in (0,1] beyond which jobs degrade to static-only (0 = off)")

		refCache   = fs.Int("ref-cache", 0, "shared reference-cache entry bound (0 = default 256)")
		journal    = fs.String("journal", "", "crash-safe job journal path (empty = in-memory only, no resume)")
		journalMax = fs.Int64("journal-max", 0, "journal compaction threshold in bytes (0 = default 4MiB)")

		storeDir = fs.String("store", "", "persistent score-store directory shared by all jobs")
		storeMax = fs.Int64("store-max", 0, "score-store on-disk byte budget (0 = default 64MiB)")

		retrieval   = fs.Bool("retrieval", false, "serve every job's static stage from an embedding index, rescoring only the top-K nearest unique bodies exactly")
		noRetrieval = fs.Bool("no-retrieval", false, "force the exact static scan (overrides -retrieval)")
		topK        = fs.Int("topk", patchecko.DefaultTopK, "unique bodies the embedding index nominates per query (with -retrieval)")

		prefilter   = fs.Bool("prefilter", true, "prune scan-grid cells with the component-identification prefilter (served reports are identical either way)")
		noPrefilter = fs.Bool("no-prefilter", false, "scan every job's full (image, CVE, mode) grid (overrides -prefilter)")
	)
	of := obs.AddFlags(fs)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if *storeMax < 0 {
		return fmt.Errorf("-store-max must be >= 0 bytes (0 = default), got %d", *storeMax)
	}
	if *topK <= 0 {
		return fmt.Errorf("-topk must be >= 1, got %d", *topK)
	}

	rawModel, err := os.ReadFile(*modelPath)
	if err != nil {
		return err
	}
	model, err := detector.Unmarshal(rawModel)
	if err != nil {
		return err
	}
	rawDB, err := os.ReadFile(*dbPath)
	if err != nil {
		return err
	}
	db, err := vulndb.Load(rawDB)
	if err != nil {
		return err
	}

	cfg := server.Config{
		Model:         model,
		DB:            db,
		QueueDepth:    *queueDepth,
		Workers:       *workers,
		ScanWorkers:   *scanWorkers,
		PerTenant:     *perTenant,
		RetryBudget:   *retryBudget,
		RetryBase:     *retryBase,
		RetryMax:      *retryMax,
		JobDeadline:   *deadline,
		ShedThreshold: *shed,
		RefCacheSize:  *refCache,
		JournalPath:   *journal,
		JournalMax:    *journalMax,
		NoPrefilter:   *noPrefilter || !*prefilter,
	}
	if *storeDir != "" {
		store, serr := cas.Open(*storeDir, obs.ModelHash(rawModel), *storeMax)
		if serr != nil {
			return serr
		}
		cfg.Store = store
	}
	if *retrieval && !*noRetrieval {
		// Distillation is deterministic in (model, seed); a fixed seed keeps
		// every restart serving byte-identical reports for the same model file.
		emb, derr := patchecko.DistillEmbedder(model, 1)
		if derr != nil {
			return fmt.Errorf("distilling retrieval embedder: %w", derr)
		}
		cfg.Embedder = emb
		cfg.TopK = *topK
		fmt.Printf("patcheckod: retrieval enabled (top-K %d, dim %d)\n", *topK, emb.Dim())
	}
	// The service-level sink feeds /metrics; -metrics/-trace additionally
	// write its artifacts at shutdown — on EVERY exit path, signals included.
	cfg.Obs = of.Collector()
	defer func() {
		if werr := of.Write(obs.RunInfo{
			Tool:      "patcheckod",
			Workers:   *scanWorkers,
			ModelHash: obs.ModelHash(rawModel),
		}); werr != nil && err == nil {
			err = werr
		}
	}()

	svc, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("patcheckod: listening on %s (queue %d, workers %d, scan-workers %d, journal %q)\n",
		*addr, *queueDepth, *workers, *scanWorkers, *journal)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("patcheckod: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if herr := httpSrv.Shutdown(shutdownCtx); herr != nil && !errors.Is(herr, context.DeadlineExceeded) {
		return herr
	}
	// svc.Close (deferred) cancels running jobs without journaling them
	// terminal, so a journaled deployment resumes them on the next start.
	return nil
}
