// Command patchecko is the scanner CLI: it trains the similarity model and
// scans firmware library images against the CVE database.
//
// Train a model (writes model.json):
//
//	patchecko train -scale small -seed 1 -out model.json
//
// Scan an image for every CVE in the database:
//
//	patchecko scan -model model.json -db corpus/vulndb.json \
//	    -image corpus/thingos-1.0/libstagefright.img
//
// Scan for a single CVE:
//
//	patchecko scan -model model.json -db corpus/vulndb.json \
//	    -image corpus/thingos-1.0/libstagefright.img -cve CVE-2018-9412
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/baseline"
	"repro/internal/binimg"
	"repro/internal/cas"
	"repro/internal/compiler"
	"repro/internal/corpus"
	"repro/internal/detector"
	"repro/internal/diffengine"
	"repro/internal/disasm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/vulndb"
	"repro/patchecko"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "scan":
		err = runScan(os.Args[2:])
	case "disasm":
		err = runDisasm(os.Args[2:])
	case "compile":
		err = runCompile(os.Args[2:])
	case "run":
		err = runRun(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "patchecko:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  patchecko train  -scale <tiny|small|medium|large> -seed N -out model.json
  patchecko scan   -model model.json -db vulndb.json -image lib.img [-cve CVE-...] [-workers N]
                   [-no-dedup] [-no-prefilter] [-store DIR [-store-max BYTES]]
                   [-retrieval [-topk K] | -no-retrieval]
  (train and scan also take -cpuprofile file / -memprofile file for go tool pprof;
   scan also takes -metrics manifest.json / -trace events.jsonl for run observability;
   -store keeps static scores on disk keyed by function content address, so
   rescanning a firmware update only re-scores functions that changed;
   -retrieval serves static candidates from an embedding index distilled from
   the model, rescoring only the top-K nearest unique bodies exactly;
   the component-identification prefilter skips CVEs whose signature rules the
   image out — every skip is printed, true hosts are never skipped (recall 1.0
   pinned by test), and -no-prefilter scans every CVE)
  patchecko disasm -image lib.img [-func name|-addr 0x...]
  patchecko compile -src file.mc [-arch amd64 -level O2 -out lib.img -strip]
  patchecko run -src file.mc -func f [-args 4096,8 -data "bytes"]
  patchecko diff -a lib1.img -b lib2.img -afunc f [-bfunc g]`)
}

func runTrain(args []string) (err error) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	var (
		scaleName = fs.String("scale", "small", "corpus scale")
		seed      = fs.Int64("seed", 1, "seed")
		out       = fs.String("out", "model.json", "output model path")
	)
	prof := profiling.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()
	scale, err := corpus.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	fmt.Printf("building training corpus (%s scale)...\n", scale.Name)
	groups, err := corpus.TrainingGroups(scale, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %d functions, %d feature vectors\n", len(groups), groups.NumVectors())
	cfg := detector.DefaultTrainConfig()
	cfg.Seed = *seed
	cfg.Epochs = scale.Epochs
	cfg.MaxPosPerFunc = scale.MaxPosPerFunc
	cfg.Verbose = func(s string) { fmt.Println("  " + s) }
	model, _, ds, err := detector.Train(groups, cfg)
	if err != nil {
		return err
	}
	acc, loss, auc := model.TestMetrics(ds.Test)
	fmt.Printf("held-out test: accuracy %.4f loss %.4f AUC %.4f\n", acc, loss, auc)
	raw, err := model.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(raw))
	return nil
}

func runDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	var (
		imagePath = fs.String("image", "", "library image")
		funcName  = fs.String("func", "", "dump a single function by symbol name")
		addr      = fs.Uint64("addr", 0, "dump the function at this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *imagePath == "" {
		return fmt.Errorf("-image is required")
	}
	raw, err := os.ReadFile(*imagePath)
	if err != nil {
		return err
	}
	im, err := binimg.Decode(raw)
	if err != nil {
		return err
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		return err
	}
	fmt.Printf("%s  arch=%s level=%s stripped=%v  %d functions\n\n",
		im.LibName, im.Arch, im.OptLevel, im.Stripped, len(dis.Funcs))
	switch {
	case *funcName != "":
		fn, ok := dis.Lookup(*funcName)
		if !ok {
			return fmt.Errorf("no function %q (stripped image?)", *funcName)
		}
		dis.Dump(os.Stdout, fn)
	case *addr != 0:
		fn, ok := dis.FuncAt(*addr)
		if !ok {
			return fmt.Errorf("no function at %#x", *addr)
		}
		dis.Dump(os.Stdout, fn)
	default:
		dis.DumpAll(os.Stdout)
	}
	return nil
}

func runScan(args []string) (err error) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "model.json", "trained model")
		dbPath    = fs.String("db", "vulndb.json", "vulnerability database")
		imagePath = fs.String("image", "", "library image to scan")
		cveID     = fs.String("cve", "", "scan a single CVE (default: all)")
		workers   = fs.Int("workers", runtime.NumCPU(), "scan worker pool size (results are identical at any count)")
		dedup     = fs.Bool("dedup", true, "share work between functions with equal content addresses (results are identical either way)")
		noDedup   = fs.Bool("no-dedup", false, "force the every-pair reference path (overrides -dedup)")
		storeDir  = fs.String("store", "", "persistent score-store directory for incremental delta scans (implies -dedup)")
		storeMax  = fs.Int64("store-max", 0, "score-store on-disk byte budget (0 = default 64MiB)")

		retrieval   = fs.Bool("retrieval", false, "serve static candidates from an embedding index, rescoring only the top-K nearest unique bodies exactly")
		noRetrieval = fs.Bool("no-retrieval", false, "force the exact static scan (overrides -retrieval)")
		topK        = fs.Int("topk", patchecko.DefaultTopK, "unique bodies the embedding index nominates per query (with -retrieval)")

		prefilter   = fs.Bool("prefilter", true, "skip CVEs whose component-identification signature rules the image out (each skip is printed; ground-truth recall is pinned at 1.0 by test)")
		noPrefilter = fs.Bool("no-prefilter", false, "scan the image against every CVE (overrides -prefilter)")
	)
	prof := profiling.AddFlags(fs)
	of := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *imagePath == "" {
		return fmt.Errorf("-image is required")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *storeMax < 0 {
		return fmt.Errorf("-store-max must be >= 0 bytes (0 = default), got %d", *storeMax)
	}
	if *topK <= 0 {
		return fmt.Errorf("-topk must be >= 1, got %d", *topK)
	}
	// Flush the observability sinks on EVERY exit path — error returns and
	// signal exits included. A partially-completed scan's counters and trace
	// are exactly what a post-mortem needs; losing them to an early return
	// defeats the point of collecting them.
	var modelHash string
	defer func() {
		if werr := of.Write(obs.RunInfo{
			Tool:      "patchecko scan",
			Workers:   *workers,
			ModelHash: modelHash,
		}); werr != nil && err == nil {
			err = werr
		}
	}()
	rawModel, err := os.ReadFile(*modelPath)
	if err != nil {
		return err
	}
	modelHash = obs.ModelHash(rawModel)
	model, err := detector.Unmarshal(rawModel)
	if err != nil {
		return err
	}
	rawDB, err := os.ReadFile(*dbPath)
	if err != nil {
		return err
	}
	db, err := vulndb.Load(rawDB)
	if err != nil {
		return err
	}
	rawImg, err := os.ReadFile(*imagePath)
	if err != nil {
		return err
	}
	im, err := binimg.Decode(rawImg)
	if err != nil {
		return err
	}

	an := patchecko.NewAnalyzer(model, db)
	an.Workers = *workers
	an.Obs = of.Collector()
	an.Dedup = *dedup && !*noDedup
	an.Prefilter = *prefilter && !*noPrefilter
	if *retrieval && !*noRetrieval {
		// Distillation is deterministic in (model, seed); a fixed seed keeps
		// repeated invocations byte-identical for the same model file.
		emb, derr := patchecko.DistillEmbedder(model, 1)
		if derr != nil {
			return fmt.Errorf("distilling retrieval embedder: %w", derr)
		}
		an.Embedder = emb
		an.TopK = *topK
		fmt.Printf("retrieval: embedding index enabled (top-K %d, dim %d)\n", *topK, emb.Dim())
	}
	if *storeDir != "" {
		if !an.Dedup {
			return fmt.Errorf("-store requires the dedup path (drop -no-dedup)")
		}
		// The store is versioned by the model content hash: entries written
		// by any other model answer as invalidated, never as hits.
		store, err := cas.Open(*storeDir, modelHash, *storeMax)
		if err != nil {
			return err
		}
		an.Store = store
	}
	prepared, err := patchecko.Prepare(im)
	if err != nil {
		return err
	}
	an.Obs.Add(obs.CtrImagesPrepared, 1)
	an.Obs.Add(obs.CtrFuncsDisassembled, int64(prepared.NumFuncs()))
	an.Obs.Emit(obs.Event{Kind: obs.EvImagePrepared, Library: im.LibName, Funcs: prepared.NumFuncs()})
	fmt.Printf("%s (%s, %s): %d functions recovered\n",
		im.LibName, im.Arch, im.OptLevel, prepared.NumFuncs())

	ids := db.IDs()
	if *cveID != "" {
		ids = []string{*cveID}
	}
	// Scan failures are isolated per CVE, mirroring the firmware engine: a
	// broken reference must not cost the scans of the remaining CVEs. Any
	// failure still exits non-zero after the loop. SIGINT/SIGTERM cancel the
	// context so an interrupted run still reaches the deferred sink flush.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	failed := 0
	pruned := 0
	for i, id := range ids {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted after %d of %d CVE scans", i, len(ids))
		}
		// Single-image mode has no grid to fold, so a pruned CVE needs no
		// rescue pass: the prefilter only ever drops cells the full scan would
		// report as no-match. -cve bypasses the skip — an explicit request is
		// always scanned.
		if an.Prefilter && *cveID == "" && !an.PrefilterKeep(prepared, id) {
			pruned++
			fmt.Printf("%-16s pruned (component prefilter: image lacks the CVE's component fingerprint)\n", id)
			continue
		}
		scan, err := an.ScanImage(ctx, prepared, id, patchecko.QueryVulnerable)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("interrupted: %w", err)
			}
			failed++
			fmt.Fprintf(os.Stderr, "patchecko: %-16s scan failed: %v\n", id, err)
			continue
		}
		an.EmitScanEvents(scan)
		if !scan.Matched {
			fmt.Printf("%-16s no match (candidates %d, survived validation %d)\n",
				id, scan.NumCandidates, scan.NumExecuted)
			continue
		}
		status := "VULNERABLE"
		if scan.Verdict.Patched {
			status = "patched"
		}
		fmt.Printf("%-16s match at %#x (sim %.3f, %d candidates -> %d executed) verdict: %s (confidence %.2f)\n",
			id, scan.Match.Addr, scan.Match.Sim, scan.NumCandidates, scan.NumExecuted,
			status, scan.Verdict.Confidence)
	}
	if pruned > 0 {
		fmt.Printf("prefilter: pruned %d of %d CVEs (rerun with -no-prefilter to scan the full set)\n",
			pruned, len(ids))
	}
	if an.Dedup {
		dc := an.DedupCounts()
		fmt.Printf("dedup: %d unique of %d functions; scored %d pairs, reused %d, from store %d\n",
			prepared.NumUnique(), prepared.NumFuncs(), dc.PairsScored, dc.PairsDeduped, dc.PairsFromStore)
		if an.Store != nil {
			fmt.Printf("store: %d hits, %d misses, %d invalidated (%d bytes in %s)\n",
				dc.StoreHits, dc.StoreMisses, dc.StoreInvalidated, an.Store.Size(), an.Store.Dir())
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d CVE scans failed", failed, len(ids))
	}
	return nil
}

func runCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	var (
		srcPath   = fs.String("src", "", "minic source file")
		name      = fs.String("name", "", "library name (default: source file base name)")
		archName  = fs.String("arch", "amd64", "target architecture: xarm32|xarm64|x86|amd64")
		levelName = fs.String("level", "O2", "optimization level: O0|O1|O2|O3|Oz|Ofast")
		out       = fs.String("out", "", "output image path (default: <name>.img)")
		strip     = fs.Bool("strip", false, "strip the symbol table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *srcPath == "" {
		return fmt.Errorf("-src is required")
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		return err
	}
	libName := *name
	if libName == "" {
		libName = strings.TrimSuffix(filepath.Base(*srcPath), filepath.Ext(*srcPath))
	}
	mod, err := minic.Parse(libName, string(src))
	if err != nil {
		return err
	}
	arch, err := isa.ByName(*archName)
	if err != nil {
		return err
	}
	im, err := compiler.Compile(mod, arch, compiler.Level(*levelName))
	if err != nil {
		return err
	}
	if *strip {
		im = im.Strip()
	}
	outPath := *out
	if outPath == "" {
		outPath = libName + ".img"
	}
	enc := binimg.Encode(im)
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("compiled %d functions (%s, %s) -> %s (%d bytes%s)\n",
		len(mod.Funcs), arch.Name, *levelName, outPath, len(enc),
		map[bool]string{true: ", stripped"}[*strip])
	return nil
}

func runRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		srcPath   = fs.String("src", "", "minic source file")
		funcName  = fs.String("func", "", "function to execute")
		archName  = fs.String("arch", "amd64", "target architecture")
		levelName = fs.String("level", "O2", "optimization level")
		argList   = fs.String("args", "", "comma-separated integer arguments (arg0 defaults to the data-buffer address)")
		dataStr   = fs.String("data", "", "initial data-buffer contents (string)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *srcPath == "" || *funcName == "" {
		return fmt.Errorf("-src and -func are required")
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		return err
	}
	mod, err := minic.Parse("main", string(src))
	if err != nil {
		return err
	}
	arch, err := isa.ByName(*archName)
	if err != nil {
		return err
	}
	im, err := compiler.Compile(mod, arch, compiler.Level(*levelName))
	if err != nil {
		return err
	}
	dis, err := disasm.Disassemble(im)
	if err != nil {
		return err
	}
	env := &minic.Env{Args: []int64{minic.DataBase}, Data: []byte(*dataStr)}
	if *argList != "" {
		env.Args = nil
		for _, tok := range strings.Split(*argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
			if err != nil {
				return fmt.Errorf("bad argument %q: %w", tok, err)
			}
			env.Args = append(env.Args, v)
		}
	}
	res, err := emu.ExecuteByName(dis, *funcName, env, 0)
	if err != nil {
		return fmt.Errorf("execution failed: %w", err)
	}
	fmt.Printf("%s(%v) = %d\n", *funcName, env.Args, res.Ret)
	v := res.Trace.Vector()
	fmt.Printf("trace: %d instructions (%d unique), %d arith, %d branch, %d load, %d store, %d lib calls, %d syscalls\n",
		int64(v[5]), int64(v[6]), int64(v[8]), int64(v[9]), int64(v[10]), int64(v[11]), int64(v[19]), int64(v[20]))
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var (
		aPath = fs.String("a", "", "first library image")
		bPath = fs.String("b", "", "second library image")
		aFunc = fs.String("afunc", "", "function in the first image")
		bFunc = fs.String("bfunc", "", "function in the second image (default: same as -afunc)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aPath == "" || *bPath == "" || *aFunc == "" {
		return fmt.Errorf("-a, -b and -afunc are required")
	}
	if *bFunc == "" {
		*bFunc = *aFunc
	}
	load := func(path, fn string) (*disasm.Disassembly, *disasm.Function, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		im, err := binimg.Decode(raw)
		if err != nil {
			return nil, nil, err
		}
		dis, err := disasm.Disassemble(im)
		if err != nil {
			return nil, nil, err
		}
		f, ok := dis.Lookup(fn)
		if !ok {
			return nil, nil, fmt.Errorf("%s: no function %q (stripped image?)", path, fn)
		}
		return dis, f, nil
	}
	adis, af, err := load(*aPath, *aFunc)
	if err != nil {
		return err
	}
	bdis, bf, err := load(*bPath, *bFunc)
	if err != nil {
		return err
	}
	asig, bsig := diffengine.SigOf(af), diffengine.SigOf(bf)
	fmt.Printf("%-24s %12s %12s\n", "", *aFunc+"@a", *bFunc+"@b")
	fmt.Printf("%-24s %12d %12d\n", "instructions", len(af.Instrs), len(bf.Instrs))
	fmt.Printf("%-24s %12d %12d\n", "basic blocks", asig.NumBlocks, bsig.NumBlocks)
	fmt.Printf("%-24s %12d %12d\n", "cfg edges", asig.NumEdges, bsig.NumEdges)
	fmt.Printf("%-24s %12d %12d\n", "call sites", asig.NumCalls, bsig.NumCalls)
	fmt.Printf("%-24s %12d %12d\n", "frame bytes", asig.LocalSize, bsig.LocalSize)
	importNames := func(idxs []int) string {
		var names []string
		for _, i := range idxs {
			if bi, ok := minic.BuiltinByIndex(i); ok {
				names = append(names, bi.Name)
			}
		}
		return strings.Join(names, ",")
	}
	fmt.Printf("%-24s %12s %12s\n", "imports", importNames(asig.Imports), importNames(bsig.Imports))
	fmt.Printf("\nsignature distance: %.2f  (0 = structurally identical)\n",
		diffengine.Distance(asig, bsig))
	fmt.Printf("bindiff block-match score: %.3f  (1 = perfect match)\n", baseline.BinDiff(af, bf))
	_ = adis
	_ = bdis
	return nil
}
