// Command experiments reproduces the paper's evaluation: every table and
// figure of §V, plus the ablations called out in DESIGN.md.
//
//	experiments -scale medium -seed 42 -all
//	experiments -scale small -fig7 -table8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/patchecko"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		scaleName   = flag.String("scale", "medium", "corpus scale: tiny|small|medium|large")
		seed        = flag.Int64("seed", 42, "seed")
		workers     = flag.Int("workers", runtime.NumCPU(), "scan worker pool size (results are identical at any count; timing columns vary)")
		dedup       = flag.Bool("dedup", true, "share scoring across content-identical functions (results are identical either way)")
		noDedup     = flag.Bool("no-dedup", false, "force every pair to be scored independently (overrides -dedup)")
		prefilter   = flag.Bool("prefilter", true, "prune scan-grid cells with the component-identification prefilter (results are identical either way)")
		noPrefilter = flag.Bool("no-prefilter", false, "scan the full (image, CVE, mode) grid (overrides -prefilter)")
		retrieval   = flag.Bool("retrieval", false, "serve the static stage from an embedding index with exact top-K rescoring")
		topK        = flag.Int("topk", patchecko.DefaultTopK, "unique bodies the embedding index nominates per query (with -retrieval)")
		all         = flag.Bool("all", false, "run every experiment")
		fig7        = flag.Bool("fig7", false, "Fig. 7: static-stage FP rates")
		fig8        = flag.Bool("fig8", false, "Fig. 8: training curves")
		table3      = flag.Bool("table3", false, "Table III: dynamic profiles (case study)")
		table45     = flag.Bool("table45", false, "Tables IV/V: similarity rankings (case study)")
		table67     = flag.Bool("table67", false, "Tables VI/VII: pipeline accuracy per CVE")
		table8      = flag.Bool("table8", false, "Table VIII: patch verdicts")
		ablate      = flag.Bool("ablate", false, "ablations")
		headline    = flag.Bool("headline", false, "headline metrics")
		census      = flag.Bool("census", false, "firmware census (§II-A)")
		charts      = flag.Bool("charts", false, "render Fig. 7/8 as ASCII bar charts too")
	)
	prof := profiling.AddFlags(flag.CommandLine)
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	if *all {
		*fig7, *fig8, *table3, *table45, *table67, *table8, *ablate, *headline =
			true, true, true, true, true, true, true, true
		*census, *charts = true, true
	}
	if !(*fig7 || *fig8 || *table3 || *table45 || *table67 || *table8 || *ablate || *headline || *census) {
		flag.Usage()
		return fmt.Errorf("nothing selected (use -all)")
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	if *retrieval && *topK <= 0 {
		return fmt.Errorf("-topk must be >= 1, got %d", *topK)
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()
	scale, err := corpus.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	// The root context for every suite call. Interrupts keep their own exit
	// path (the signal goroutine below flushes and exits) rather than
	// cancelling this context: a cancelled scan would surface as a scan error
	// and mask the partial-artifact flush.
	ctx := context.Background()
	suite, err := experiments.NewSuite(ctx, experiments.Config{
		Scale:       scale,
		Seed:        *seed,
		Workers:     *workers,
		Obs:         of.Collector(),
		NoDedup:     *noDedup || !*dedup,
		NoPrefilter: *noPrefilter || !*prefilter,
		Retrieval:   *retrieval,
		TopK:        *topK,
		Log:         func(s string) { fmt.Println(s) },
	})
	if err != nil {
		return err
	}
	flushObs := func() error {
		return of.Write(obs.RunInfo{
			Tool:    "experiments",
			Seed:    *seed,
			Scale:   scale.Name,
			Workers: *workers,
		})
	}
	defer func() {
		if werr := flushObs(); werr != nil && err == nil {
			err = werr
		}
	}()
	// A signal exit must not lose the sinks either: flush what the suite has
	// collected so far, then exit with the conventional interrupted status.
	// The sink is concurrency-safe, so flushing mid-experiment is sound.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		flushObs()
		fmt.Fprintf(os.Stderr, "experiments: %v: partial observability artifacts flushed\n", sig)
		os.Exit(130)
	}()
	out := os.Stdout
	caseDevice := corpus.ThingOS.Name
	const caseCVE = "CVE-2018-9412"

	if *census {
		fmt.Println()
		c, err := suite.Census()
		if err != nil {
			return err
		}
		c.Render(out)
	}
	if *fig8 {
		fmt.Println()
		r := suite.Fig8()
		r.Render(out)
		if *charts {
			fmt.Println()
			r.RenderChart(out)
		}
	}
	if *fig7 {
		fmt.Println()
		r, err := suite.Fig7()
		if err != nil {
			return err
		}
		r.Render(out)
		if *charts {
			fmt.Println()
			r.RenderChart(out)
		}
	}
	if *table3 {
		fmt.Println()
		r, err := suite.Table3(ctx, caseDevice, caseCVE)
		if err != nil {
			return err
		}
		r.Render(out)
	}
	if *table45 {
		for _, mode := range []patchecko.QueryMode{patchecko.QueryVulnerable, patchecko.QueryPatched} {
			fmt.Println()
			r, err := suite.Ranking(ctx, caseDevice, caseCVE, mode, 10)
			if err != nil {
				return err
			}
			r.Render(out)
		}
	}
	if *table67 {
		for _, mode := range []patchecko.QueryMode{patchecko.QueryVulnerable, patchecko.QueryPatched} {
			fmt.Println()
			r, err := suite.Pipeline(ctx, caseDevice, mode)
			if err != nil {
				return err
			}
			r.Render(out)
		}
	}
	if *table8 {
		for _, dev := range experiments.Devices() {
			fmt.Println()
			r, err := suite.Verdicts(ctx, dev.Name)
			if err != nil {
				return err
			}
			r.Render(out)
		}
	}
	if *ablate {
		fmt.Println()
		bl, err := suite.Baselines(caseDevice)
		if err != nil {
			return err
		}
		bl.Render(out)
		fmt.Println()
		d, err := suite.AblateDistance(ctx, caseDevice)
		if err != nil {
			return err
		}
		d.Render(out)
		fmt.Println()
		rr, err := suite.VerdictsWithReplay(ctx, caseDevice)
		if err != nil {
			return err
		}
		fmt.Println("Ablation — Table VIII with exploit-replay extension enabled:")
		rr.Render(out)
		fmt.Println()
		e, err := suite.AblateEnvironments(ctx, caseDevice)
		if err != nil {
			return err
		}
		e.Render(out)
		fmt.Println()
		h, err := suite.AblateHybrid(ctx, caseDevice)
		if err != nil {
			return err
		}
		h.Render(out)
		fmt.Println()
		fg, err := suite.AblateFeatureGroups()
		if err != nil {
			return err
		}
		fg.Render(out)
		fmt.Println()
		ob, err := suite.AblateObfuscation()
		if err != nil {
			return err
		}
		ob.Render(out)
		fmt.Println()
		pf, err := suite.AblatePrefilter(ctx)
		if err != nil {
			return err
		}
		pf.Render(out)
	}
	if *headline {
		fmt.Println()
		h, err := suite.Headlines(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("headline metrics (paper values in parentheses):\n")
		fmt.Printf("  deep learning test accuracy: %.1f%%  (paper: >93%%)\n", 100*h.TestAccuracy)
		fmt.Printf("  deep learning test AUC:      %.3f  (prior work: 0.971)\n", h.TestAUC)
		fmt.Printf("  true match in top 3:         %.0f%%  (paper: 100%%)\n", 100*h.Top3Rate)
		fmt.Printf("  patch detection accuracy:    %.0f%%  (paper: 96%%)\n", 100*h.PatchAccuracy)
	}
	return nil
}
