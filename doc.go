// Package repro is a from-scratch Go reproduction of PATCHECKO ("Hybrid
// Firmware Analysis for Known Mobile and IoT Security Vulnerabilities",
// DSN 2020): a hybrid static/dynamic binary-similarity pipeline that finds
// known-vulnerable functions in stripped firmware images and decides
// whether they have been patched.
//
// The public API lives in the patchecko subpackage; the substrates (source
// language, compilers, binary format, disassembler, emulator, neural
// network, fuzzer, corpus generators) live under internal/. bench_test.go
// in this directory regenerates every table and figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package repro
